#include "graph/rng.hpp"

#include <cmath>

namespace strat::graph {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless SplitMix64 finalizer: the avalanche rounds alone, used to
/// fold stream coordinates into a seed.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start at the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = -n % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) noexcept { return mean + sigma * normal(); }

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  // Sum of independent Poissons is Poisson: split large means so the
  // product method's exp(-mean) limit never underflows.
  std::uint64_t total = 0;
  while (mean > 32.0) {
    const double half = mean / 2.0;
    total += poisson(half);
    mean -= half;
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double product = uniform();
  while (product > limit) {
    ++k;
    product *= uniform();
  }
  return total + k;
}

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  // uniform() < 1, so log1p(-u) is finite.
  return -mean * std::log1p(-uniform());
}

std::uint64_t Rng::skip_geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::split() noexcept { return Rng((*this)() ^ 0xA3EC647659359ACDULL); }

Rng Rng::stream(std::uint64_t key, std::uint64_t a, std::uint64_t b) noexcept {
  // Each coordinate is offset by a distinct odd constant and folded
  // through a full avalanche round, so (key, a, b) triples that differ
  // in any single coordinate seed unrelated generators.
  std::uint64_t seed = mix64(key + 0x9E3779B97F4A7C15ULL);
  seed = mix64(seed ^ (a + 0xBF58476D1CE4E5B9ULL));
  seed = mix64(seed ^ (b + 0x94D049BB133111EBULL));
  return Rng(seed);
}

}  // namespace strat::graph
