// Deterministic pseudo-random number generation for all simulations.
//
// Every stochastic component in the library takes an explicit Rng& so
// experiments are reproducible from a single seed. The generator is
// xoshiro256** (Blackman & Vigna) seeded via SplitMix64, which gives
// high-quality 64-bit streams without std::mt19937_64's 2.5 KB state.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace strat::graph {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator,
/// so it can also drive <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's rejection
  /// method, so results are unbiased.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second value).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Poisson draw with the given mean (0 when mean <= 0). Knuth's
  /// product method for small means; large means split recursively into
  /// independent halves, so the draw stays exact at any rate. Drives
  /// the swarm churn arrival/replacement processes.
  std::uint64_t poisson(double mean) noexcept;

  /// Exponential draw with the given mean (inverse CDF). Drives the
  /// swarm churn lifetime model.
  double exponential(double mean) noexcept;

  /// Geometric-style skip: number of failures before the first success of
  /// a Bernoulli(p) sequence, i.e. floor(log(U)/log(1-p)). Used by the
  /// G(n,p) edge-skip sampler. Requires 0 < p <= 1.
  std::uint64_t skip_geometric(double p) noexcept;

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator (for parallel workers).
  [[nodiscard]] Rng split() noexcept;

  /// Counter-based stream derivation: a generator keyed purely by
  /// `(key, a, b)` — no sequential state involved, so the stream for a
  /// given coordinate triple is the same no matter how many other
  /// streams were derived, in what order, or on which thread. The
  /// coordinates are mixed through SplitMix64 finalizer rounds before
  /// seeding. This is what makes per-peer randomness (key = run key,
  /// a = peer id, b = round) independent of iteration order: the swarm
  /// choke phase draws from these instead of one shared generator.
  [[nodiscard]] static Rng stream(std::uint64_t key, std::uint64_t a, std::uint64_t b) noexcept;

  /// The complete generator state, exposed so simulations can be
  /// checkpointed: restoring it continues the exact draw sequence
  /// (Box-Muller's cached second normal included).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  [[nodiscard]] State state() const noexcept {
    return State{{s_[0], s_[1], s_[2], s_[3]}, cached_normal_, has_cached_normal_};
  }

  /// Restores a state captured by state(). Rejects the all-zero word
  /// vector (not a valid xoshiro256** state) with std::invalid_argument
  /// so a corrupt checkpoint cannot wedge the generator.
  void restore(const State& st) {
    if ((st.s[0] | st.s[1] | st.s[2] | st.s[3]) == 0) {
      throw std::invalid_argument("Rng::restore: all-zero state");
    }
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace strat::graph
