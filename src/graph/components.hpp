// Connected-component and distance analysis.
//
// Used to measure clustering of the collaboration graph (Table 1,
// Figure 6) and to check the b0 >= 3 connectivity lower bound (§4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace strat::graph {

/// Component labelling of a graph.
struct Components {
  /// component id per vertex (0-based, dense).
  std::vector<std::uint32_t> label;
  /// size per component id.
  std::vector<std::size_t> size;

  [[nodiscard]] std::size_t count() const noexcept { return size.size(); }
  [[nodiscard]] std::size_t largest() const noexcept;
  /// Mean component size (vertices / components); 0 for empty graphs.
  [[nodiscard]] double mean_size() const noexcept;
  /// Peer-averaged component size: expected size of the component a
  /// uniformly random vertex lives in. This is the "average cluster
  /// size" a peer experiences (used for Table 1 / Figure 6).
  [[nodiscard]] double vertex_mean_size() const noexcept;
};

/// Computes components via iterative BFS. O(V + E).
[[nodiscard]] Components connected_components(const Graph& g);

/// True iff the graph is connected (vacuously true for order <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// BFS distances from `source`; unreachable vertices get SIZE_MAX.
[[nodiscard]] std::vector<std::size_t> bfs_distances(const Graph& g, Vertex source);

/// Exact diameter of the (connected) graph via per-vertex BFS; returns 0
/// for order <= 1. Throws std::invalid_argument if disconnected.
/// O(V·(V+E)) — intended for the small graphs in the cluster studies.
[[nodiscard]] std::size_t diameter(const Graph& g);

}  // namespace strat::graph
