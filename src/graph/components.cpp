#include "graph/components.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace strat::graph {

std::size_t Components::largest() const noexcept {
  if (size.empty()) return 0;
  return *std::max_element(size.begin(), size.end());
}

double Components::mean_size() const noexcept {
  if (size.empty()) return 0.0;
  return static_cast<double>(label.size()) / static_cast<double>(size.size());
}

double Components::vertex_mean_size() const noexcept {
  if (label.empty()) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t s : size) sum_sq += static_cast<double>(s) * static_cast<double>(s);
  return sum_sq / static_cast<double>(label.size());
}

Components connected_components(const Graph& g) {
  constexpr auto kUnlabelled = std::numeric_limits<std::uint32_t>::max();
  Components out;
  out.label.assign(g.order(), kUnlabelled);
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < g.order(); ++start) {
    if (out.label[start] != kUnlabelled) continue;
    const auto id = static_cast<std::uint32_t>(out.size.size());
    out.size.push_back(0);
    out.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      ++out.size[id];
      for (Vertex v : g.neighbors(u)) {
        if (out.label[v] == kUnlabelled) {
          out.label[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.order() <= 1) return true;
  return connected_components(g).count() == 1;
}

std::vector<std::size_t> bfs_distances(const Graph& g, Vertex source) {
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  if (source >= g.order()) throw std::invalid_argument("bfs_distances: bad source");
  std::vector<std::size_t> dist(g.order(), kInf);
  std::vector<Vertex> frontier{source};
  dist[source] = 0;
  std::size_t level = 0;
  std::vector<Vertex> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (Vertex u : frontier) {
      for (Vertex v : g.neighbors(u)) {
        if (dist[v] == kInf) {
          dist[v] = level;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::size_t diameter(const Graph& g) {
  if (g.order() <= 1) return 0;
  if (!is_connected(g)) throw std::invalid_argument("diameter: graph is disconnected");
  std::size_t best = 0;
  for (Vertex u = 0; u < g.order(); ++u) {
    const auto dist = bfs_distances(g, u);
    for (std::size_t d : dist) best = std::max(best, d);
  }
  return best;
}

}  // namespace strat::graph
