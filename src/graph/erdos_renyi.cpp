#include "graph/erdos_renyi.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

namespace strat::graph {

Graph erdos_renyi_gnp(std::size_t n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("erdos_renyi_gnp: p out of [0,1]");
  Graph g(n);
  if (n < 2 || p == 0.0) return g;
  if (p >= 1.0) return complete_graph(n);
  // Geometric skip over the linearized strict upper triangle: visit edge
  // indices e_0 < e_1 < ... where gaps are Geometric(p). O(|E|) expected.
  const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = rng.skip_geometric(p);
  while (idx < total) {
    // Decode linear index -> (u, v) with u < v. Row u starts at offset
    // u*n - u*(u+3)/2... use the standard triangular decoding.
    // Find u = largest integer with u*(2n-u-1)/2 <= idx.
    // Solve quadratically then adjust (robust to rounding).
    const double nd = static_cast<double>(n);
    const double fi = static_cast<double>(idx);
    auto u = static_cast<std::uint64_t>(
        (2.0 * nd - 1.0 - std::sqrt((2.0 * nd - 1.0) * (2.0 * nd - 1.0) - 8.0 * fi)) / 2.0);
    auto row_start = [&](std::uint64_t r) { return r * (2 * n - r - 1) / 2; };
    while (u > 0 && row_start(u) > idx) --u;
    while (row_start(u + 1) <= idx) ++u;
    const std::uint64_t v = u + 1 + (idx - row_start(u));
    g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    idx += 1 + rng.skip_geometric(p);
  }
  g.finalize();
  return g;
}

Graph erdos_renyi_gnd(std::size_t n, double expected_degree, Rng& rng) {
  if (n < 2) {
    if (expected_degree > 0.0) {
      throw std::invalid_argument("erdos_renyi_gnd: need n >= 2 for positive degree");
    }
    return Graph(n);
  }
  const double p = expected_degree / static_cast<double>(n - 1);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("erdos_renyi_gnd: expected degree out of [0, n-1]");
  }
  return erdos_renyi_gnp(n, p, rng);
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u + 1 < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

Graph ring_lattice(std::size_t n, std::size_t k) {
  if (k == 0) throw std::invalid_argument("ring_lattice: k must be >= 1");
  if (n < 2 * k + 1) throw std::invalid_argument("ring_lattice: need n >= 2k+1");
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t off = 1; off <= k; ++off) {
      const std::size_t v = (u + off) % n;
      g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
    }
  }
  g.finalize();
  return g;
}

Graph configuration_model(std::size_t n, std::size_t b, Rng& rng) {
  if (b >= n) throw std::invalid_argument("configuration_model: need b < n");
  std::vector<Vertex> stubs;
  stubs.reserve(n * b);
  for (Vertex u = 0; u < n; ++u) {
    for (std::size_t s = 0; s < b; ++s) stubs.push_back(u);
  }
  rng.shuffle(stubs);
  Graph g(n);
  // Pair consecutive stubs; reject loops and duplicates. Residual stubs
  // (typically O(b^2) of them) are simply dropped.
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const Vertex u = stubs[i];
    const Vertex v = stubs[i + 1];
    if (u == v || g.has_edge(u, v)) continue;
    g.add_edge(u, v);
  }
  g.finalize();
  return g;
}

}  // namespace strat::graph
