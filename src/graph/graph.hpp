// Undirected simple graph with adjacency lists.
//
// Vertices are dense 0-based indices (the library maps peer ranks onto
// them). The graph is loopless and stores each edge once per endpoint.
// has_edge() is O(log deg) after finalize() (adjacency sorted), O(deg)
// before; generators call finalize() on your behalf.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace strat::graph {

using Vertex = std::uint32_t;

/// Undirected loopless simple graph.
class Graph {
 public:
  Graph() = default;

  /// Creates an edgeless graph on `n` vertices.
  explicit Graph(std::size_t n);

  /// Number of vertices.
  [[nodiscard]] std::size_t order() const noexcept { return adjacency_.size(); }

  /// Number of edges.
  [[nodiscard]] std::size_t size() const noexcept { return edge_count_; }

  /// Adds the undirected edge {u, v}.
  /// Throws std::invalid_argument on a loop, out-of-range vertex, or
  /// (when `check_duplicate`) a duplicate edge. Invalidates sortedness.
  void add_edge(Vertex u, Vertex v, bool check_duplicate = false);

  /// Sorts all adjacency lists; enables O(log deg) has_edge and makes
  /// neighbor iteration rank-ordered (vertex id order).
  void finalize();

  /// True once finalize() has run and no edge was added since.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// Degree of `u`. Throws std::out_of_range on a bad vertex.
  [[nodiscard]] std::size_t degree(Vertex u) const;

  /// Neighbors of `u` (sorted ascending iff finalized()).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex u) const;

  /// Membership test for edge {u, v}; false for loops or bad vertices.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// Removes vertex `u`'s incident edges (the vertex itself stays, with
  /// degree 0). Used by churn. O(sum of neighbor degrees).
  void isolate(Vertex u);

  /// Appends `count` fresh isolated vertices; returns the first new id.
  Vertex grow(std::size_t count);

  /// Mean degree (2·|E| / |V|), 0 for the empty graph.
  [[nodiscard]] double mean_degree() const noexcept;

 private:
  std::vector<std::vector<Vertex>> adjacency_;
  std::size_t edge_count_ = 0;
  bool finalized_ = true;  // vacuously true while edgeless
};

}  // namespace strat::graph
