// Extension (§7): combining the global-ranking utility with a
// symmetric latency utility. Stratification is intrinsic to the
// rank-based slots — but a single proximity slot per peer shortcuts the
// chain-like collaboration graph, cutting its diameter (the streaming
// play-out-delay concern) while leaving the TFT incentive structure
// (rank matching, MMO) untouched.
#include <iostream>

#include "bench_common.hpp"
#include "core/hybrid.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/components.hpp"
#include "graph/erdos_renyi.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "rankslots", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 400));
  const double d = cli.get_double("d", 30.0);
  const auto rank_slots = static_cast<std::uint32_t>(cli.get_int("rankslots", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));

  bench::banner(cli, "Extension: hybrid rank+latency overlays (n = " + std::to_string(n) +
                ", d = " + sim::fmt(d, 0) + ", " + std::to_string(rank_slots) +
                " rank slots)");

  graph::Rng rng(seed);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph acceptance = graph::erdos_renyi_gnd(n, d, rng);
  std::vector<double> coords(n);
  for (auto& c : coords) c = rng.uniform();

  // Baseline: pure rank matching.
  const core::ExplicitAcceptance acc(acceptance, ranking);
  const core::Matching rank_only =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, rank_slots));
  const auto rank_graph = core::collaboration_graph(rank_only);

  sim::Table table({"proximity slots", "largest-component diameter", "components",
                    "rank-matching MMO", "mean proximity distance"});
  {
    const auto comps = graph::connected_components(rank_graph);
    table.add_row({"0 (pure TFT)",
                   std::to_string(core::largest_component_diameter(rank_graph)),
                   std::to_string(comps.count()),
                   sim::fmt(core::mean_max_offset(rank_only, ranking), 1), "-"});
  }
  for (const std::uint32_t prox : {1u, 2u, 3u}) {
    core::HybridConfig cfg;
    cfg.rank_slots = rank_slots;
    cfg.proximity_slots = prox;
    const core::HybridOverlay overlay =
        core::build_hybrid_overlay(acceptance, ranking, coords, cfg);
    double dist = 0.0;
    std::size_t pairs = 0;
    for (core::PeerId p = 0; p < n; ++p) {
      for (core::PeerId q : overlay.proximity_matching.mates(p)) {
        if (q > p) {
          dist += core::ring_distance(coords[p], coords[q]);
          ++pairs;
        }
      }
    }
    const auto comps = graph::connected_components(overlay.combined);
    table.add_row({std::to_string(prox),
                   std::to_string(core::largest_component_diameter(overlay.combined)),
                   std::to_string(comps.count()),
                   sim::fmt(core::mean_max_offset(overlay.rank_matching, ranking), 1),
                   pairs == 0 ? "-" : sim::fmt(dist / static_cast<double>(pairs), 4)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(the rank matching — and with it the TFT incentive/stratification\n"
               " structure — is untouched; the symmetric slots only add shortcuts.\n"
               " Mean ring distance of a random pair is 0.25.)\n";
  return 0;
}
