// §6 strategy discussion: a rational peer tweaking its own TFT slot
// count while everyone else keeps the 4-slot default. Fewer slots =
// higher per-slot bandwidth = better partners; the drift toward one
// slot is the Nash pressure that the 4-slot default trades off against
// collaboration-graph connectivity.
#include <iostream>

#include "bench_common.hpp"
#include "bittorrent/efficiency.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "upload", "realizations", "maxslots", "seed", "csv"});
  bt::SlotStrategyOptions opt;
  opt.n = static_cast<std::size_t>(cli.get_int("n", 400));
  opt.deviator_upload_kbps = cli.get_double("upload", 400.0);
  opt.realizations = static_cast<std::size_t>(cli.get_int("realizations", 60));
  opt.max_tft_slots = static_cast<std::size_t>(cli.get_int("maxslots", 8));
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 5)));

  bench::banner(cli, "S6: slot-count strategy for a rational peer (upload " +
                sim::fmt(opt.deviator_upload_kbps, 0) + " kbps, others keep 3 TFT + 1)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto sweep = bt::slot_strategy_sweep(model, opt, rng);
  sim::Table table({"TFT slots", "kbps/slot", "mean TFT mates", "mean download", "efficiency"});
  for (const auto& pt : sweep) {
    table.add_row({std::to_string(pt.tft_slots), sim::fmt(pt.per_slot_kbps, 1),
                   sim::fmt(pt.mean_mates, 2), sim::fmt(pt.mean_download, 1),
                   sim::fmt(pt.efficiency, 3)});
  }
  bench::emit(cli, table);

  strat::bench::out(cli) << "\nNash pressure: efficiency(1 slot) / efficiency(" << sweep.back().tft_slots
            << " slots) = " << sim::fmt(sweep.front().efficiency / sweep.back().efficiency, 2)
            << "\n";

  // The counterweight: a 1-matching collaboration graph cannot be
  // connected; the obedient default must keep b0 >= 3.
  strat::bench::out(cli) << "\nconnectivity counterweight (complete graph, n = 12):\n";
  for (std::uint32_t b = 1; b <= 4; ++b) {
    const core::Matching m =
        core::stable_configuration_complete(std::vector<std::uint32_t>(12, b));
    strat::bench::out(cli) << "  b0 = " << b << ": "
              << core::cluster_stats(m).components << " components\n";
  }
  strat::bench::out(cli) << "(hence the default of 4 = 3 TFT + 1 optimistic: enough connectivity,\n"
               " while staying as far as practical from the 1-slot Nash drift)\n";
  return 0;
}
