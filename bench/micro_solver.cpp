// Microbenchmarks: Algorithm 1 (generic + complete-graph fast path),
// blocking-pair search, and single initiatives.
#include <benchmark/benchmark.h>

#include "core/blocking.hpp"
#include "core/disorder.hpp"
#include "core/initiative.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

namespace {

using namespace strat;

void BM_StableConfigurationER(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto b0 = static_cast<std::uint32_t>(state.range(1));
  graph::Rng rng(1);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::Matching m(n, b0);
  for (auto _ : state) {
    core::stable_configuration(acc, ranking, m);
    benchmark::DoNotOptimize(m.connection_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.size()));
}
BENCHMARK(BM_StableConfigurationER)
    ->Args({1000, 1})
    ->Args({1000, 3})
    ->Args({10000, 1})
    ->Args({10000, 3});

void BM_StableConfigurationComplete(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<std::uint32_t> caps(n, 4);
  for (auto _ : state) {
    const core::Matching m = core::stable_configuration_complete(caps);
    benchmark::DoNotOptimize(m.connection_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_StableConfigurationComplete)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_CompleteViaGenericSolver(benchmark::State& state) {
  // Ablation partner of the fast path: the same instance through the
  // generic solver over a materialized K_n.
  const auto n = static_cast<std::size_t>(state.range(0));
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const core::CompleteAcceptance acc(n, ranking);
  core::Matching m(n, 4);
  for (auto _ : state) {
    core::stable_configuration(acc, ranking, m);
    benchmark::DoNotOptimize(m.connection_count());
  }
}
BENCHMARK(BM_CompleteViaGenericSolver)->Arg(1000)->Arg(4000);

void BM_FindBlockingPair(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(2);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  const core::Matching stable =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::find_blocking_pair(acc, ranking, stable));
  }
}
BENCHMARK(BM_FindBlockingPair)->Arg(1000)->Arg(10000);

void BM_BestMateInitiative(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(3);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::Matching m(n, 1);
  core::PeerId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::best_mate_initiative(acc, ranking, m, p));
    p = static_cast<core::PeerId>((p + 7919) % n);  // pseudo-random walk
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BestMateInitiative)->Arg(1000)->Arg(10000);

void BM_DisorderMetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(4);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, 10.0, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  const core::Matching stable =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 1));
  const core::Matching empty(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::disorder_1matching(empty, stable, ranking));
  }
}
BENCHMARK(BM_DisorderMetric)->Arg(1000)->Arg(10000);

}  // namespace
