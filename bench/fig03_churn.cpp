// Figure 3: from the empty configuration, distance to the *instant*
// stable state under continuous churn (1000 users, 1-matching, 10
// neighbors per peer) for churn rates 30/1000 .. 0.5/1000 and no churn.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/churn.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "units", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const double d = cli.get_double("d", 10.0);
  const double units = cli.get_double("units", 20.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  bench::banner(cli, "Figure 3: disorder vs time under churn");
  strat::bench::out(cli) << "(" << n << " users, 1-matching, " << d << " neighbors per peer)\n";

  const std::vector<double> rates{0.03, 0.01, 0.003, 0.0005, 0.0};
  std::vector<std::vector<core::TrajectoryPoint>> runs;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    graph::Rng rng(seed + r);
    core::ChurnParams params;
    params.initial_peers = n;
    params.expected_degree = d;
    params.capacity = 1;
    params.churn_rate = rates[r];
    core::ChurnSimulator sim_(params, rng);
    runs.push_back(sim_.run(units, 2));
  }

  std::vector<std::string> headers{"initiatives/peer"};
  for (double r : rates) {
    headers.push_back(r == 0.0 ? "no churn"
                               : "churn=" + sim::fmt(r * 1000.0, 1) + "/1000");
  }
  sim::Table table(headers);
  for (std::size_t i = 0; i < runs.front().size(); ++i) {
    std::vector<std::string> row{sim::fmt(runs[0][i].initiatives_per_peer, 1)};
    for (const auto& run : runs) {
      row.push_back(sim::fmt(run[std::min(i, run.size() - 1)].disorder, 4));
    }
    table.add_row(row);
  }
  bench::emit(cli, table);

  strat::bench::out(cli) << "\nmean plateau disorder (second half; paper: roughly proportional to rate):\n";
  for (std::size_t r = 0; r < rates.size(); ++r) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = runs[r].size() / 2; i < runs[r].size(); ++i) {
      sum += runs[r][i].disorder;
      ++count;
    }
    strat::bench::out(cli) << "  rate " << sim::fmt(rates[r] * 1000.0, 1)
              << "/1000: " << sim::fmt(sum / static_cast<double>(count), 4) << "\n";
  }
  return 0;
}
