// Scenario driver: seed/leecher capacity asymmetry sweep.
//
// The paper's §6 model assumes seeds are not the bottleneck; this sweep
// measures what the protocol actually delivers when they are (or when
// they are overprovisioned): a grid over seed count × seed capacity
// (as a multiple of the median leecher capacity), each point averaged
// over parallel replications. Output: completion progress, mean/decile
// leech rates, and the stratification window metrics per grid point.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv,
                     {"peers", "reps", "warmup", "window", "threads", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 120));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 10));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 30));
  const auto threads = static_cast<std::size_t>(
      cli.get_int("threads", static_cast<std::int64_t>(sim::recommended_threads())));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 41));

  bench::banner(cli, "Seed/leecher capacity asymmetry sweep (" + std::to_string(peers) +
                         " leechers, " + std::to_string(reps) + " replications, " +
                         std::to_string(threads) + " threads)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const std::vector<double> bw = model.representative_sample(peers);
  std::vector<double> sorted = bw;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];

  std::vector<std::uint64_t> seeds(reps);
  for (std::size_t i = 0; i < reps; ++i) seeds[i] = base_seed + i;

  sim::Table table({"seeds", "seed capacity (x median)", "completed", "mean completion round",
                    "mean leech kbps", "top decile kbps", "bottom decile kbps",
                    "partner-rank corr", "mean |offset|/n"});
  for (const std::size_t seed_count : {1u, 2u, 4u}) {
    for (const double factor : {0.25, 1.0, 4.0}) {
      bt::SwarmScenario scenario;
      scenario.config.num_peers = peers;
      scenario.config.seeds = seed_count;
      scenario.config.num_pieces = 256;
      scenario.config.piece_kb = 128.0;
      scenario.config.neighbor_degree = 25.0;
      // Flash-crowd start: every block must initially come from the
      // seeds, so their capacity actually binds.
      scenario.config.post_flashcrowd = false;
      scenario.config.seed_upload_kbps = factor * median;
      scenario.upload_kbps = bw;
      scenario.warmup_rounds = warmup;
      scenario.measure_rounds = window;
      const auto results = bt::run_replications(scenario, seeds, threads);

      double completed = 0.0;
      double completion_round = 0.0;
      double mean_kbps = 0.0;
      double top = 0.0;
      double bottom = 0.0;
      double corr = 0.0;
      double offset = 0.0;
      for (const auto& r : results) {
        completed += static_cast<double>(r.completed_leechers);
        completion_round += r.mean_completion_round;
        mean_kbps += r.mean_leech_kbps;
        top += r.top_decile_kbps;
        bottom += r.bottom_decile_kbps;
        corr += r.strat.partner_rank_correlation;
        offset += r.strat.mean_normalized_offset;
      }
      const auto n = static_cast<double>(results.size());
      table.add_row({std::to_string(seed_count), sim::fmt(factor, 2),
                     sim::fmt(completed / n, 1), sim::fmt(completion_round / n, 1),
                     sim::fmt(mean_kbps / n, 0), sim::fmt(top / n, 0),
                     sim::fmt(bottom / n, 0), sim::fmt(corr / n, 3),
                     sim::fmt(offset / n, 3)});
    }
  }
  bench::emit(cli, table);
  bench::out(cli) << "\n(starved seeds depress everyone but hit the slow deciles least — they\n"
                     " were TFT-limited anyway; overprovisioned seeds lift the whole curve\n"
                     " while the stratification of leecher-leecher exchange persists)\n";
  return 0;
}
