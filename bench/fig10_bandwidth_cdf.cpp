// Figure 10: cumulative distribution of upstream capacities, after
// Saroiu et al. 2002 (synthetic mixture — see DESIGN.md §5).
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "sim/table.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"csv"});

  bench::banner(cli, "Figure 10: estimation of upstream bandwidth capacities (Saroiu et al.)");
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();

  sim::Table table({"upstream (kbps)", "percentage of hosts <= x"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 10.0; x <= 100000.0 * 1.0001; x *= std::pow(10.0, 0.25)) {
    const double c = model.cdf(x) * 100.0;
    table.add_row({sim::fmt(x, 0), sim::fmt(c, 1)});
    xs.push_back(std::log10(x));
    ys.push_back(c);
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\nCDF (x = log10 kbps):\n" << sim::ascii_series(xs, ys, 50, 2, 1);

  strat::bench::out(cli) << "\nmixture components:\n";
  for (const auto& c : model.components()) {
    strat::bench::out(cli) << "  " << c.label << ": weight " << sim::fmt(c.weight, 2) << ", median "
              << sim::fmt(c.median_kbps, 0) << " kbps, sigma " << sim::fmt(c.log10_sigma, 2)
              << " decades\n";
  }
  strat::bench::out(cli) << "\nwaypoints: P(<=100 kbps) = " << sim::fmt(model.cdf(100.0), 3)
            << ", P(<=1 Mbps) = " << sim::fmt(model.cdf(1000.0), 3)
            << ", P(<=10 Mbps) = " << sim::fmt(model.cdf(10000.0), 3) << "\n";
  return 0;
}
