// Table 1: clustering and stratification on a complete knowledge graph.
// Left half: constant b0-matching (cluster size b0+1, closed-form MMO);
// right half: rounded-normal N(b̄, 0.2) capacities (cluster size
// explodes factorially, MMO *drops*).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/rng.hpp"

namespace {

using namespace strat;

std::vector<std::uint32_t> rounded_normal_caps(std::size_t n, double mean, double sigma,
                                               graph::Rng& rng) {
  std::vector<std::uint32_t> caps(n);
  for (auto& b : caps) {
    b = static_cast<std::uint32_t>(std::max(1.0, std::round(rng.normal(mean, sigma))));
  }
  return caps;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Cli cli(argc, argv, {"sigma", "seeds", "scale", "csv"});
  const double sigma = cli.get_double("sigma", 0.2);
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 3));
  const double scale = cli.get_double("scale", 1.0);

  bench::banner(cli, "Table 1: clustering and stratification in a complete knowledge graph");
  sim::Table table({"b0 / b-mean", "const: cluster size", "const: MMO (closed form)",
                    "const: MMO (measured)", "normal s=" + sim::fmt(sigma, 1) + ": cluster size",
                    "normal: peer-avg cluster", "normal: MMO"});

  for (std::size_t b = 2; b <= 7; ++b) {
    // Constant b0-matching: measure on a population of whole clusters.
    const std::size_t n_const = (b + 1) * 2000;
    const core::Matching mc = core::stable_configuration_complete(
        std::vector<std::uint32_t>(n_const, static_cast<std::uint32_t>(b)));
    const core::GlobalRanking rc = core::GlobalRanking::identity(n_const);
    const auto stats_c = core::cluster_stats(mc);
    const double mmo_c = core::mean_max_offset(mc, rc);

    // Variable capacities: population sized to hold several of the
    // (factorially growing) clusters the paper reports.
    const std::size_t n_var = static_cast<std::size_t>(
        scale * static_cast<double>(std::min<std::size_t>(240000, 4000 << (2 * (b - 2)))));
    double comp_mean_sum = 0.0;
    double vertex_mean_sum = 0.0;
    double mmo_sum = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      graph::Rng rng(100 + b * 10 + s);
      const auto caps = rounded_normal_caps(n_var, static_cast<double>(b), sigma, rng);
      const core::Matching mv = core::stable_configuration_complete(caps);
      const auto stats_v = core::cluster_stats(mv);
      comp_mean_sum += stats_v.mean_size;
      vertex_mean_sum += stats_v.vertex_mean_size;
      const core::GlobalRanking rv = core::GlobalRanking::identity(n_var);
      mmo_sum += core::mean_max_offset(mv, rv);
    }
    table.add_row({std::to_string(b), sim::fmt(stats_c.vertex_mean_size, 1),
                   sim::fmt(core::mmo_closed_form(b), 2), sim::fmt(mmo_c, 2),
                   sim::fmt(comp_mean_sum / static_cast<double>(seeds), 0),
                   sim::fmt(vertex_mean_sum / static_cast<double>(seeds), 0),
                   sim::fmt(mmo_sum / static_cast<double>(seeds), 2)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\npaper reference rows:\n"
               "  const cluster size: 3 4 5 6 7 8;  const MMO: 1.67 2.5 3.2 4 4.71 5.5\n"
               "  normal cluster size: 6 20 78 350 1800 11000;  normal MMO: 1.33 2.10 "
               "2.52 3.21 3.65 4.31\n";
  return 0;
}
