// Figure 6: influence of sigma for b-matching with b ~ N(6, sigma) on a
// complete acceptance graph. Mean cluster size explodes at the phase
// transition (sigma ~ 0.15) while the Mean Max Offset decreases.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/rng.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "bmean", "seeds", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 60000));
  const double bmean = cli.get_double("bmean", 6.0);
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 2));

  bench::banner(cli, "Figure 6: sigma sweep for N(" + sim::fmt(bmean, 0) + ", sigma)-matching");
  strat::bench::out(cli) << "(n = " << n << ", complete acceptance graph)\n";

  sim::Table table({"sigma", "mean cluster size", "MMO"});
  std::vector<double> sigmas;
  for (double s = 0.0; s <= 2.0001; s += 0.1) sigmas.push_back(s);

  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  for (const double sigma : sigmas) {
    double cluster_sum = 0.0;
    double mmo_sum = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      graph::Rng rng(1000 + static_cast<std::uint64_t>(sigma * 100.0) + s);
      std::vector<std::uint32_t> caps(n);
      for (auto& b : caps) {
        b = static_cast<std::uint32_t>(std::max(1.0, std::round(rng.normal(bmean, sigma))));
      }
      const core::Matching m = core::stable_configuration_complete(caps);
      cluster_sum += core::cluster_stats(m).mean_size;
      mmo_sum += core::mean_max_offset(m, ranking);
    }
    table.add_row({sim::fmt(sigma, 1), sim::fmt(cluster_sum / static_cast<double>(seeds), 1),
                   sim::fmt(mmo_sum / static_cast<double>(seeds), 2)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(paper: cluster size explodes once sigma ~ 0.15 produces heterogeneous\n"
               " samples, then stays almost constant; MMO decreases across the transition;\n"
               " sigma = 0 is the constant 6-matching: cluster 7, MMO "
            << sim::fmt(core::mmo_closed_form(6), 2) << ")\n";
  return 0;
}
