// Figure 2: starting from the stable state of (n = 1000, d = 10,
// 1-matching), remove one peer (paper labels 1, 100, 300, 600) and
// watch convergence towards the new stable state.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamics.hpp"
#include "graph/erdos_renyi.hpp"

namespace {

using namespace strat;

std::vector<core::TrajectoryPoint> removal_run(const graph::Graph& g,
                                               const core::GlobalRanking& ranking,
                                               const core::Matching& stable,
                                               core::PeerId victim, double units,
                                               std::uint64_t seed) {
  const std::size_t n = g.order();
  graph::Graph perturbed = g;
  perturbed.isolate(victim);
  const core::ExplicitAcceptance acc(perturbed, ranking);
  std::vector<std::uint32_t> caps(n, 1);
  caps[victim] = 0;
  graph::Rng rng(seed);
  core::DynamicsEngine engine(acc, ranking, caps, core::Strategy::kBestMate, rng);
  core::Matching seeded{std::vector<std::uint32_t>(caps)};
  for (core::PeerId p = 0; p < n; ++p) {
    const core::PeerId q = stable.mate(p);
    if (q != core::kNoPeer && q > p && p != victim && q != victim) {
      seeded.connect(p, q, ranking);
    }
  }
  engine.set_current(std::move(seeded));
  return engine.run(units, 4);
}

}  // namespace

int main(int argc, char** argv) {
  const strat::sim::Cli cli(argc, argv, {"n", "d", "units", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const double d = cli.get_double("d", 10.0);
  const double units = cli.get_double("units", 10.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2));

  strat::bench::banner(cli, "Figure 2: recovery after removing one peer from the stable state");
  strat::bench::out(cli) << "(" << n << " users, 1-matching, " << d << " neighbors per peer)\n";

  graph::Rng rng(seed);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  const core::Matching stable =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(n, 1));

  // Paper labels are 1-based; victims scaled to n.
  const std::vector<core::PeerId> victims{
      0, static_cast<core::PeerId>(n / 10 - 1), static_cast<core::PeerId>(3 * n / 10 - 1),
      static_cast<core::PeerId>(6 * n / 10 - 1)};
  std::vector<std::vector<core::TrajectoryPoint>> runs;
  for (std::size_t v = 0; v < victims.size(); ++v) {
    runs.push_back(removal_run(g, ranking, stable, victims[v], units, seed + 10 + v));
  }

  std::vector<std::string> headers{"initiatives/peer"};
  for (core::PeerId v : victims) headers.push_back("peer " + std::to_string(v + 1) + " removed");
  strat::sim::Table table(headers);
  const std::size_t points = runs.front().size();
  for (std::size_t i = 0; i < points; ++i) {
    std::vector<std::string> row{strat::sim::fmt(runs[0][i].initiatives_per_peer, 2)};
    for (const auto& run : runs) {
      row.push_back(strat::sim::fmt(run[std::min(i, run.size() - 1)].disorder, 6));
    }
    table.add_row(row);
  }
  strat::bench::emit(cli, table);

  strat::bench::out(cli) << "\npeak disorder per removal (paper: good peers cause more disorder):\n";
  for (std::size_t v = 0; v < victims.size(); ++v) {
    double peak = 0.0;
    for (const auto& pt : runs[v]) peak = std::max(peak, pt.disorder);
    strat::bench::out(cli) << "  peer " << victims[v] + 1 << ": " << strat::sim::fmt(peak, 6) << "\n";
  }
  return 0;
}
