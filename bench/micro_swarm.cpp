// Microbenchmarks: swarm round throughput and its building blocks.
//
// BM_SwarmRound times the flat edge-slot data plane at 10^2..10^4
// peers and BM_SwarmRoundHuge at 10^5 (fixed iteration count: one
// round there is itself a macro-workload). BM_ReferenceSwarmRound
// times the retained map-based plane on the same configuration so the
// flat layout's speedup stays a measured number. BM_SwarmChurnRound
// runs the same 5000-peer workload under replacement churn (the
// paper's x/1000 regime through the dynamic overlay) — the
// BM_SwarmRound/5000 ratio is the cost of churn, which the acceptance
// bar keeps within 1.25x. scripts/bench_all.sh snapshots the whole
// file into BENCH_swarm.json.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include <memory>
#include <optional>
#include <vector>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/piece_picker.hpp"
#include "bittorrent/reference_swarm.hpp"
#include "bittorrent/scenario.hpp"
#include "bittorrent/snapshot.hpp"
#include "bittorrent/swarm.hpp"
#include "bittorrent/tracker_sim.hpp"

namespace {

using namespace strat;

// Resident set size in MB (Linux; 0 elsewhere) — the whole-process
// check behind BM_SwarmLongChurn's flat-memory claim.
double rss_mb() {
#ifdef __linux__
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
      long kb = 0;
      if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
        std::fclose(f);
        return static_cast<double>(kb) / 1024.0;
      }
    }
    std::fclose(f);
  }
#endif
  return 0.0;
}

bt::SwarmConfig round_config(std::size_t peers) {
  bt::SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 1024;
  cfg.piece_kb = 1024.0;  // long-lived so rounds stay comparable
  cfg.neighbor_degree = 30.0;
  cfg.initial_completion = 0.5;
  return cfg;
}

void BM_SwarmRound(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::Swarm swarm(round_config(peers), model.representative_sample(peers), rng);
  for (auto _ : state) {
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_SwarmRound)->Arg(100)->Arg(400)->Arg(5000)->Arg(10000)->Unit(benchmark::kMillisecond);

// Thread-scaling sweep: the BM_SwarmRoundHuge workload with
// SwarmConfig::threads = the second argument. Runs are bitwise
// identical across the sweep (per-peer choke and transfer streams);
// only the wall clock moves. The counters split the round via
// Swarm::phase_profile(): choke_fold_ms plus transfer_compute_ms is
// the parallel portion, serial_ms (mutual + transfer commit) is the
// Amdahl remainder the whole-round time dilutes the speedup with.
// transfer_rerun_ms and rerun_frac expose the conflict cost of the
// speculative plan-against-snapshot stage — rerun_frac is thread-count
// invariant by construction, so a change across the sweep is a bug.
void BM_SwarmRoundThreads(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::SwarmConfig cfg = round_config(peers);
  cfg.threads = threads;
  bt::Swarm swarm(cfg, model.representative_sample(peers), rng);
  for (auto _ : state) {
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  const auto& prof = swarm.phase_profile();
  const auto rounds = static_cast<double>(swarm.rounds_elapsed());
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["choke_fold_ms"] =
      (prof.choke_seconds + prof.fold_seconds) * 1000.0 / rounds;
  state.counters["transfer_compute_ms"] = prof.transfer_compute_seconds * 1000.0 / rounds;
  state.counters["transfer_commit_ms"] = prof.transfer_commit_seconds * 1000.0 / rounds;
  state.counters["transfer_rerun_ms"] = prof.transfer_rerun_seconds * 1000.0 / rounds;
  state.counters["rerun_frac"] = prof.rerun_fraction();
  state.counters["serial_ms"] =
      (prof.mutual_seconds + prof.transfer_commit_seconds) * 1000.0 / rounds;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_SwarmRoundThreads)
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({100000, 8})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// 10^5 peers: ~3M edge slots. Fixed iterations keep the harness from
// rescaling this into minutes of wall clock.
void BM_SwarmRoundHuge(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::Swarm swarm(round_config(peers), model.representative_sample(peers), rng);
  for (auto _ : state) {
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_SwarmRoundHuge)->Arg(100000)->Iterations(3)->Unit(benchmark::kMillisecond);

// The pre-rewrite unordered_map data plane, same workload: the
// BM_SwarmRound/5000 vs BM_ReferenceSwarmRound/5000 ratio is the
// speedup the CSR layout buys.
void BM_ReferenceSwarmRound(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::ReferenceSwarm swarm(round_config(peers), model.representative_sample(peers), rng);
  for (auto _ : state) {
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_ReferenceSwarmRound)->Arg(400)->Arg(5000)->Unit(benchmark::kMillisecond);

// The dynamic overlay under replacement churn: every round first
// applies the churn events (departures release slots, arrivals recycle
// them, periodic re-announce), then runs the round. The argument is
// the paper's x (events per 1000 peers per round).
void BM_SwarmChurnRound(benchmark::State& state) {
  constexpr std::size_t kPeers = 5000;
  const auto x = static_cast<double>(state.range(0));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::Swarm swarm(round_config(kPeers), model.representative_sample(kPeers), rng);
  bt::ChurnSpec spec;
  spec.replacement_rate = bt::paper_replacement_rate(x, kPeers);
  spec.arrival_completion = 0.5;
  spec.reannounce_interval = 10;
  bt::ChurnDriver<bt::Swarm> churn(spec, round_config(kPeers),
                                   model.representative_sample(kPeers), rng);
  churn.attach(swarm);
  for (auto _ : state) {
    churn.before_round(swarm);
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPeers));
  state.counters["arrivals"] = static_cast<double>(swarm.arrivals());
}
BENCHMARK(BM_SwarmChurnRound)->Arg(1)->Arg(5)->Arg(20)->Unit(benchmark::kMillisecond);

// The open-system scale gate: a 5000-live-peer swarm absorbing the
// argument's cumulative arrivals (10^5, 10^6) through replacement
// churn with model-sampled arrival capacities and no departed-peer
// archive. The dense peer-table compaction keeps per-peer storage and
// round time O(live): compare end_round_ms / data_plane_mb / rss_mb
// across the two args — flat (±10%) is the acceptance bar, where the
// pre-compaction plane grew linearly with arrivals-ever. Both args run
// the same number of simulated rounds (so the end-state probe compares
// same-age swarms) and differ only in replacement rate, i.e. in how
// many peers ever churned through; the benchmark's own time is the
// whole run.
void BM_SwarmLongChurn(benchmark::State& state) {
  constexpr std::size_t kPeers = 5000;
  constexpr std::size_t kRounds = 200;
  const auto target_arrivals = static_cast<std::size_t>(state.range(0));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  bt::SwarmConfig cfg = round_config(kPeers);
  cfg.retain_departed = false;  // aggregates only: flat memory forever
  bt::ChurnSpec spec;
  spec.replacement_rate =
      static_cast<double>(target_arrivals) / static_cast<double>(kRounds);
  spec.arrival_completion = 0.5;
  spec.reannounce_interval = 10;
  spec.arrival_bandwidth = bt::ChurnSpec::ArrivalBandwidth::kModel;
  spec.arrival_model = model;
  for (auto _ : state) {
    graph::Rng rng(7);
    bt::Swarm swarm(cfg, model.representative_sample(kPeers), rng);
    bt::ChurnDriver<bt::Swarm> churn(spec, cfg, {}, rng);
    churn.attach(swarm);
    for (std::size_t r = 0; r < kRounds || swarm.arrivals() < target_arrivals; ++r) {
      churn.before_round(swarm);
      swarm.run_round();
    }
    // End-state round time, churn excluded: O(live) iff flat across args.
    constexpr std::size_t kProbeRounds = 5;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < kProbeRounds; ++r) swarm.run_round();
    const auto stop = std::chrono::steady_clock::now();
    const auto fp = swarm.memory_footprint();
    state.counters["arrivals"] = static_cast<double>(swarm.arrivals());
    state.counters["end_round_ms"] =
        std::chrono::duration<double, std::milli>(stop - start).count() /
        static_cast<double>(kProbeRounds);
    state.counters["data_plane_mb"] =
        static_cast<double>(fp.peer_state_bytes + fp.edge_slot_bytes) / (1024.0 * 1024.0);
    state.counters["id_index_mb"] =
        static_cast<double>(fp.id_index_bytes) / (1024.0 * 1024.0);
    state.counters["rss_mb"] = rss_mb();
    benchmark::DoNotOptimize(swarm.live_peer_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(target_arrivals));
}
BENCHMARK(BM_SwarmLongChurn)
    ->Arg(100000)
    ->Arg(1000000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Replication sweep throughput through the scenario engine; threads is
// the second argument (1 = serial baseline).
void BM_ScenarioReplications(benchmark::State& state) {
  const auto replications = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  bt::SwarmScenario scenario;
  scenario.config = round_config(200);
  scenario.config.num_pieces = 256;
  scenario.config.piece_kb = 256.0;
  scenario.upload_kbps = bt::BandwidthModel::saroiu2002().representative_sample(200);
  scenario.warmup_rounds = 5;
  scenario.measure_rounds = 10;
  std::vector<std::uint64_t> seeds(replications);
  for (std::size_t i = 0; i < replications; ++i) seeds[i] = 1000 + i;
  for (auto _ : state) {
    const auto results = bt::run_replications(scenario, seeds, threads);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replications));
}
BENCHMARK(BM_ScenarioReplications)
    ->Args({4, 1})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

// Churned replication throughput: the same sweep with replacement
// churn + re-announce active, so BENCH_swarm.json tracks open-system
// scenario throughput across PRs too.
void BM_ChurnScenarioReplications(benchmark::State& state) {
  const auto replications = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  bt::SwarmScenario scenario;
  scenario.config = round_config(200);
  scenario.config.num_pieces = 256;
  scenario.config.piece_kb = 256.0;
  scenario.upload_kbps = bt::BandwidthModel::saroiu2002().representative_sample(200);
  scenario.warmup_rounds = 5;
  scenario.measure_rounds = 10;
  scenario.churn.replacement_rate = bt::paper_replacement_rate(10.0, 200);
  scenario.churn.arrival_completion = 0.5;
  scenario.churn.reannounce_interval = 5;
  std::vector<std::uint64_t> seeds(replications);
  for (std::size_t i = 0; i < replications; ++i) seeds[i] = 2000 + i;
  for (auto _ : state) {
    const auto results = bt::run_replications(scenario, seeds, threads);
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(replications));
}
BENCHMARK(BM_ChurnScenarioReplications)
    ->Args({4, 1})
    ->Args({4, 4})
    ->Unit(benchmark::kMillisecond);

// Checkpoint serialization cost at 10^4 and 10^5 peers: one iteration
// is save_to_string + resume_from_string of a warmed-up swarm. The
// acceptance bar is save_load_vs_round < 1.0 — checkpointing a 10^5-
// peer swarm (~3M edge slots) must cost less than simulating one round
// of it, so periodic checkpoints are affordable inside long runs.
// snapshot_mb tracks the stream size across PRs (format regressions
// show up here before they show up in disk quotas).
void BM_SwarmSnapshot(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::Swarm swarm(round_config(peers), model.representative_sample(peers), rng);
  swarm.run(3);  // populate rates, partials, in-flight state
  const auto r0 = std::chrono::steady_clock::now();
  swarm.run_round();
  const double round_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - r0).count();
  double save_s = 0.0;
  double load_s = 0.0;
  std::size_t snapshot_bytes = 0;
  double trips = 0.0;
  for (auto _ : state) {
    const auto s0 = std::chrono::steady_clock::now();
    const std::string snap = bt::save_to_string(swarm);
    const auto s1 = std::chrono::steady_clock::now();
    bt::ResumedSwarm resumed = bt::resume_from_string(snap);
    const auto s2 = std::chrono::steady_clock::now();
    save_s += std::chrono::duration<double>(s1 - s0).count();
    load_s += std::chrono::duration<double>(s2 - s1).count();
    snapshot_bytes = snap.size();
    trips += 1.0;
    benchmark::DoNotOptimize(resumed.swarm().live_peer_count());
  }
  state.counters["snapshot_mb"] = static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0);
  state.counters["save_ms"] = save_s * 1000.0 / trips;
  state.counters["load_ms"] = load_s * 1000.0 / trips;
  state.counters["round_ms"] = round_s * 1000.0;
  state.counters["save_load_vs_round"] = (save_s + load_s) / trips / round_s;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_SwarmSnapshot)
    ->Arg(10000)
    ->Arg(100000)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// --- Tracker-scale ecosystem -----------------------------------------
//
// BM_TrackerSimShards sweeps shards {1, 2, 4, 8} over ecosystems of
// 10 / 100 / 1000 churned multi-torrent swarms. One item = one
// whole-swarm round, so items_per_second is the tracker's swarm-round
// throughput. The counters split each round the way the sharding
// model does: barrier_ms is the serial tracker phase (registry prune,
// capacity re-split, Zipf arrivals), shard_ms the parallel fan-out,
// and imbalance_ms the max-min shard wall-clock spread — the number
// that says whether round-robin swarm assignment is leaving cores
// idle. Runs are bitwise identical across the shard sweep (the
// test-suite contract); only the wall clock may move.

bt::SwarmConfig tracker_member_config() {
  bt::SwarmConfig cfg;
  cfg.num_peers = 16;  // overwritten by each seed's member list
  cfg.seeds = 1;
  cfg.num_pieces = 64;
  cfg.piece_kb = 64.0;
  cfg.neighbor_degree = 6.0;
  cfg.initial_completion = 0.5;
  cfg.stay_as_seed = false;  // completions depart: real registry churn
  return cfg;
}

std::vector<bt::TrackerSwarmSeed> tracker_disjoint_seeds(std::size_t num_swarms,
                                                         std::size_t peers) {
  std::vector<bt::TrackerSwarmSeed> seeds(num_swarms);
  for (std::size_t k = 0; k < num_swarms; ++k) {
    seeds[k].config = tracker_member_config();
    seeds[k].members.resize(peers);
    for (std::size_t local = 0; local < peers; ++local) {
      seeds[k].members[local] = static_cast<bt::GlobalPeerId>(k * peers + local);
    }
  }
  return seeds;
}

void BM_TrackerSimShards(benchmark::State& state) {
  const auto num_swarms = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kPeers = 16;
  bt::TrackerConfig cfg;
  cfg.shards = shards;
  // Ecosystem-level Poisson arrivals scaled with the swarm count so
  // the per-swarm churn regime is comparable across the sweep.
  cfg.arrival_rate = 0.2 * static_cast<double>(num_swarms);
  cfg.zipf_exponent = 1.0;
  cfg.multi_torrent_fraction = 0.3;
  cfg.arrival_model = bt::BandwidthModel::saroiu2002();
  cfg.swarm_churn.lifetime = bt::ChurnSpec::Lifetime::kExponential;
  cfg.swarm_churn.lifetime_rounds = 25.0;
  cfg.swarm_churn.arrival_completion = 0.25;
  const auto capacities =
      bt::BandwidthModel::saroiu2002().representative_sample(num_swarms * kPeers);
  bt::TrackerSim tracker(cfg, tracker_disjoint_seeds(num_swarms, kPeers), capacities, 42);
  tracker.run(5);  // warm up: live churn state before the timed rounds
  for (auto _ : state) {
    tracker.run_round();
    benchmark::DoNotOptimize(tracker.rounds_elapsed());
  }
  const bt::EcosystemProfile prof = tracker.ecosystem_profile();
  const auto rounds = static_cast<double>(prof.rounds);  // warmup included
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["barrier_ms"] = prof.barrier_seconds * 1000.0 / rounds;
  state.counters["shard_ms"] = prof.shard_seconds * 1000.0 / rounds;
  state.counters["imbalance_ms"] = prof.shard_imbalance_seconds * 1000.0 / rounds;
  state.counters["live_peers"] = static_cast<double>(tracker.registry().size());
  state.counters["live_memberships"] = static_cast<double>(tracker.live_membership_count());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(num_swarms));
}
BENCHMARK(BM_TrackerSimShards)
    ->ArgsProduct({{10, 100, 1000}, {1, 2, 4, 8}})
    ->Iterations(5)
    ->Unit(benchmark::kMillisecond);

// The shards=1 overhead gate: the same closed (no arrivals, frozen
// capacity split) 100-swarm workload through the tracker layer versus
// a plain serial loop over standalone Swarm instances — exactly what
// run_multi_swarm did before it became a TrackerSim shim. The
// acceptance bar keeps BM_TrackerClosedRounds within 10% of
// BM_SerialSwarmLoopRounds: the registry barrier and the inline
// shards=1 fan-out must cost noise, not a tax, when the tracker adds
// nothing.

void BM_TrackerClosedRounds(benchmark::State& state) {
  constexpr std::size_t kSwarms = 100;
  constexpr std::size_t kPeers = 16;
  bt::TrackerConfig cfg;
  cfg.shards = 1;
  cfg.dynamic_capacity_split = false;
  const auto capacities =
      bt::BandwidthModel::saroiu2002().representative_sample(kSwarms * kPeers);
  bt::TrackerSim tracker(cfg, tracker_disjoint_seeds(kSwarms, kPeers), capacities, 42);
  for (auto _ : state) {
    tracker.run_round();
    benchmark::DoNotOptimize(tracker.rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSwarms));
}
BENCHMARK(BM_TrackerClosedRounds)->Iterations(20)->Unit(benchmark::kMillisecond);

void BM_SerialSwarmLoopRounds(benchmark::State& state) {
  constexpr std::size_t kSwarms = 100;
  constexpr std::size_t kPeers = 16;
  const auto capacities =
      bt::BandwidthModel::saroiu2002().representative_sample(kSwarms * kPeers);
  // Stable-address slots: Swarm holds a reference to its Rng, so both
  // live behind one unique_ptr (the TrackerSim slot layout).
  struct Slot {
    graph::Rng rng;
    std::optional<bt::Swarm> swarm;
    explicit Slot(std::uint64_t seed) : rng(seed) {}
  };
  std::vector<std::unique_ptr<Slot>> slots;
  slots.reserve(kSwarms);
  for (std::size_t k = 0; k < kSwarms; ++k) {
    auto slot = std::make_unique<Slot>(
        42 + bt::kTrackerSwarmSeedStride * (static_cast<std::uint64_t>(k) + 1));
    std::vector<double> caps(capacities.begin() + static_cast<std::ptrdiff_t>(k * kPeers),
                             capacities.begin() +
                                 static_cast<std::ptrdiff_t>((k + 1) * kPeers));
    bt::SwarmConfig cfg = tracker_member_config();
    cfg.num_peers = kPeers;
    slot->swarm.emplace(cfg, caps, slot->rng);
    slots.push_back(std::move(slot));
  }
  for (auto _ : state) {
    for (auto& slot : slots) slot->swarm->run_round();
    benchmark::DoNotOptimize(slots.back()->swarm->rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSwarms));
}
BENCHMARK(BM_SerialSwarmLoopRounds)->Iterations(20)->Unit(benchmark::kMillisecond);

// Fault-injection cost: the BM_SwarmRound workload with the fault
// model off (arg 0 — must stay within noise of BM_SwarmRound/5000,
// the zero-cost-when-off gate) and with a combined outage + flaky
// connect + NAT + lane-loss regime on (arg 1). fault_ms is the
// explicit fault phase (backoff sweep) per round; the rest of the
// faulted overhead lives inside announce and commit and shows up in
// the whole-round time.
void BM_SwarmFaults(benchmark::State& state) {
  constexpr std::size_t kPeers = 5000;
  const bool faulted = state.range(0) != 0;
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::SwarmConfig cfg = round_config(kPeers);
  if (faulted) {
    cfg.faults.outage_period = 10;
    cfg.faults.outage_duration = 3;
    cfg.faults.connect_failure_prob = 0.2;
    cfg.faults.connect_attempts = 2;
    cfg.faults.nat_fraction = 0.25;
    cfg.faults.lane_loss_prob = 0.05;
  }
  bt::Swarm swarm(cfg, model.representative_sample(kPeers), rng);
  bt::ChurnSpec spec;
  spec.replacement_rate = bt::paper_replacement_rate(5.0, kPeers);
  spec.arrival_completion = 0.5;
  spec.reannounce_interval = 10;
  bt::ChurnDriver<bt::Swarm> churn(spec, cfg, model.representative_sample(kPeers), rng);
  churn.attach(swarm);
  for (auto _ : state) {
    churn.before_round(swarm);
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  const auto& prof = swarm.phase_profile();
  const auto rounds = static_cast<double>(swarm.rounds_elapsed());
  state.counters["fault_ms"] = prof.fault_seconds * 1000.0 / rounds;
  state.counters["lost_lanes"] = static_cast<double>(prof.fault_lost_lanes);
  state.counters["connect_failures"] = static_cast<double>(prof.fault_connect_failures);
  state.counters["degraded_peers"] = static_cast<double>(prof.fault_degraded_peers);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPeers));
}
BENCHMARK(BM_SwarmFaults)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RarestFirstPick(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(2);
  bt::PiecePicker picker(pieces);
  bt::Bitfield local(pieces);
  bt::Bitfield remote(pieces);
  for (bt::PieceId i = 0; i < pieces; ++i) {
    const auto copies = static_cast<std::uint32_t>(rng.below(20));
    for (std::uint32_t c = 0; c < copies; ++c) picker.add_availability(i);
    if (rng.bernoulli(0.5)) local.set(i);
    if (rng.bernoulli(0.7)) remote.set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(picker.pick_rarest(local, remote, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pieces));
}
BENCHMARK(BM_RarestFirstPick)->Arg(256)->Arg(4096);

void BM_BandwidthQuantile(benchmark::State& state) {
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  double q = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.quantile(q));
    q += 0.001;
    if (q >= 0.999) q = 0.001;
  }
}
BENCHMARK(BM_BandwidthQuantile);

}  // namespace
