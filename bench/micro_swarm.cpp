// Microbenchmarks: swarm round throughput and its building blocks.
#include <benchmark/benchmark.h>

#include "bittorrent/bandwidth.hpp"
#include "bittorrent/piece_picker.hpp"
#include "bittorrent/swarm.hpp"

namespace {

using namespace strat;

void BM_SwarmRound(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  bt::SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 1024;
  cfg.piece_kb = 1024.0;  // long-lived so rounds stay comparable
  cfg.neighbor_degree = 30.0;
  cfg.initial_completion = 0.5;
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  graph::Rng rng(1);
  bt::Swarm swarm(cfg, model.representative_sample(peers), rng);
  for (auto _ : state) {
    swarm.run_round();
    benchmark::DoNotOptimize(swarm.rounds_elapsed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(peers));
}
BENCHMARK(BM_SwarmRound)->Arg(100)->Arg(400);

void BM_RarestFirstPick(benchmark::State& state) {
  const auto pieces = static_cast<std::size_t>(state.range(0));
  graph::Rng rng(2);
  bt::PiecePicker picker(pieces);
  bt::Bitfield local(pieces);
  bt::Bitfield remote(pieces);
  for (bt::PieceId i = 0; i < pieces; ++i) {
    const auto copies = static_cast<std::uint32_t>(rng.below(20));
    for (std::uint32_t c = 0; c < copies; ++c) picker.add_availability(i);
    if (rng.bernoulli(0.5)) local.set(i);
    if (rng.bernoulli(0.7)) remote.set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(picker.pick_rarest(local, remote, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pieces));
}
BENCHMARK(BM_RarestFirstPick)->Arg(256)->Arg(4096);

void BM_BandwidthQuantile(benchmark::State& state) {
  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  double q = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.quantile(q));
    q += 0.001;
    if (q >= 0.999) q = 0.001;
  }
}
BENCHMARK(BM_BandwidthQuantile);

}  // namespace
