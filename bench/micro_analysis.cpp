// Microbenchmarks: Algorithms 2 and 3 and the Monte-Carlo estimator.
#include <benchmark/benchmark.h>

#include "analysis/independent_bmatching.hpp"
#include "analysis/independent_matching.hpp"
#include "analysis/monte_carlo.hpp"
#include "graph/rng.hpp"

namespace {

using namespace strat;

void BM_Algorithm2FullMatrix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const analysis::Independent1Matching m(n, 10.0 / static_cast<double>(n));
    benchmark::DoNotOptimize(m.mass(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n / 2));
}
BENCHMARK(BM_Algorithm2FullMatrix)->Arg(500)->Arg(2000);

void BM_Algorithm2Streaming(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  analysis::StreamingOptions opt;
  opt.n = n;
  opt.p = 10.0 / static_cast<double>(n);
  opt.capture_rows = {0};
  for (auto _ : state) {
    const auto result = analysis::independent_1matching_streaming(opt);
    benchmark::DoNotOptimize(result.mass[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n / 2));
}
BENCHMARK(BM_Algorithm2Streaming)->Arg(2000)->Arg(8000);

void BM_Algorithm3Streaming(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto b0 = static_cast<std::size_t>(state.range(1));
  analysis::BMatchingOptions opt;
  opt.n = n;
  opt.p = 20.0 / static_cast<double>(n);
  opt.b0 = b0;
  for (auto _ : state) {
    const auto result = analysis::analyze_bmatching(opt);
    benchmark::DoNotOptimize(result.expected_mates[0]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n / 2 * b0));
}
BENCHMARK(BM_Algorithm3Streaming)->Args({1000, 2})->Args({1000, 3})->Args({4000, 3});

void BM_MonteCarloRealization(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  analysis::MonteCarloOptions opt;
  opt.n = n;
  opt.p = 20.0 / static_cast<double>(n);
  opt.b0 = 2;
  opt.realizations = 1;
  opt.tracked = {static_cast<core::PeerId>(n / 2)};
  graph::Rng rng(5);
  for (auto _ : state) {
    const auto result = analysis::estimate_mate_distribution(opt, rng);
    benchmark::DoNotOptimize(result.realizations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MonteCarloRealization)->Arg(1000)->Arg(5000);

}  // namespace
