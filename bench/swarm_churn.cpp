// Scenario driver: churn rate vs. stratification (protocol-level
// analogue of Figure 3).
//
// The paper shows (matching model, §3) that replacement churn at rate
// x/1000 barely perturbs stratification until x grows large. This
// driver replays that experiment through the protocol simulator: a
// grid over the paper's x values, each point running replacement
// churn at x events per 1000 peers per round through the dynamic
// overlay (slot recycling + tracker re-announce), averaged over
// parallel replications. A second table compares arrival processes
// (closed swarm, Poisson arrivals with exponential lifetimes, one-shot
// flash crowd) on the same population. Output: churn accounting,
// completion progress, leech rates, stratification window metrics and
// the measured wall-clock round time.
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "sim/parallel.hpp"

namespace {

/// Wall-clock ms per round of one serial scenario run.
double time_ms_per_round(const strat::bt::SwarmScenario& scenario, std::uint64_t seed) {
  const auto start = std::chrono::steady_clock::now();
  const auto result = strat::bt::run_scenario(scenario, seed);
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  (void)result;
  const auto rounds = static_cast<double>(scenario.warmup_rounds + scenario.measure_rounds);
  return elapsed.count() / rounds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv,
                     {"peers", "reps", "warmup", "window", "threads", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 1000));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 15));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 30));
  const auto threads = static_cast<std::size_t>(
      cli.get_int("threads", static_cast<std::int64_t>(sim::recommended_threads())));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 47));

  bench::banner(cli, "Churn rate vs. stratification, dynamic overlay (" +
                         std::to_string(peers) + " peers, " + std::to_string(reps) +
                         " replications, " + std::to_string(threads) + " threads)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const std::vector<double> bw = model.representative_sample(peers);
  std::vector<std::uint64_t> seeds(reps);
  for (std::size_t i = 0; i < reps; ++i) seeds[i] = base_seed + i;

  bt::SwarmScenario base;
  base.config.num_peers = peers;
  base.config.seeds = std::max<std::size_t>(1, peers / 1000);
  base.config.num_pieces = 1024;
  base.config.piece_kb = 1024.0;  // long-lived content: the window stays leecher-dominated
  base.config.neighbor_degree = 25.0;
  base.config.initial_completion = 0.5;
  base.upload_kbps = bw;
  base.warmup_rounds = warmup;
  base.measure_rounds = window;

  // --- Figure 3 analogue: replacement churn sweep ---------------------
  sim::Table table({"x (per 1000/round)", "events/round", "arrivals", "departures",
                    "completed", "mean leech kbps", "partner-rank corr", "mean |offset|/n",
                    "availability cv", "ms/round"});
  for (const double x : {0.0, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    bt::SwarmScenario scenario = base;
    scenario.churn.replacement_rate = bt::paper_replacement_rate(x, peers);
    scenario.churn.arrival_completion = 0.5;  // stationary block repartition
    scenario.churn.reannounce_interval = 10;
    const double ms_per_round = time_ms_per_round(scenario, base_seed + 1000);
    const auto results = bt::run_replications(scenario, seeds, threads);

    double arrivals = 0.0;
    double departures = 0.0;
    double completed = 0.0;
    double mean_kbps = 0.0;
    double corr = 0.0;
    double offset = 0.0;
    double cv = 0.0;
    for (const auto& r : results) {
      arrivals += static_cast<double>(r.arrivals);
      departures += static_cast<double>(r.departures);
      completed += static_cast<double>(r.completed_leechers);
      mean_kbps += r.mean_leech_kbps;
      corr += r.strat.partner_rank_correlation;
      offset += r.strat.mean_normalized_offset;
      cv += r.availability_cv;
    }
    const auto n = static_cast<double>(results.size());
    table.add_row({sim::fmt(x, 0), sim::fmt(scenario.churn.replacement_rate, 1),
                   sim::fmt(arrivals / n, 0), sim::fmt(departures / n, 0),
                   sim::fmt(completed / n, 0), sim::fmt(mean_kbps / n, 0),
                   sim::fmt(corr / n, 3), sim::fmt(offset / n, 3), sim::fmt(cv / n, 3),
                   sim::fmt(ms_per_round, 2)});
  }
  bench::emit(cli, table);
  bench::out(cli) << "\n(the paper's Figure 3 claim at the protocol level: replacement churn\n"
                     " at the x/1000 rates leaves TFT stratification largely intact — the\n"
                     " recycled overlay keeps the acceptance graph G(n,d)-like, and the\n"
                     " re-announce sweep repairs the degrees departures thin out)\n\n";

  // --- Arrival processes: open-system workloads -----------------------
  sim::Table processes({"arrival process", "arrivals", "departures", "live at end",
                        "completed", "mean leech kbps", "partner-rank corr"});
  for (const std::string mode : {"closed", "poisson+exp", "flash crowd"}) {
    bt::SwarmScenario scenario = base;
    scenario.churn.reannounce_interval = 10;
    if (mode == "poisson+exp") {
      scenario.churn.arrivals = bt::ChurnSpec::Arrivals::kPoisson;
      scenario.churn.lifetime = bt::ChurnSpec::Lifetime::kExponential;
      scenario.churn.lifetime_rounds = static_cast<double>(warmup + window);
      // Little's law: arrivals at n/lifetime keep the population near n.
      scenario.churn.arrival_rate =
          static_cast<double>(peers) / scenario.churn.lifetime_rounds;
    } else if (mode == "flash crowd") {
      scenario.config.post_flashcrowd = false;  // everyone starts empty
      scenario.churn.arrivals = bt::ChurnSpec::Arrivals::kFlashCrowd;
      scenario.churn.flash_crowd_size = peers / 2;
      scenario.churn.flash_crowd_round = warmup / 2;
    }
    const auto results = bt::run_replications(scenario, seeds, threads);
    double arrivals = 0.0;
    double departures = 0.0;
    double live = 0.0;
    double completed = 0.0;
    double mean_kbps = 0.0;
    double corr = 0.0;
    for (const auto& r : results) {
      arrivals += static_cast<double>(r.arrivals);
      departures += static_cast<double>(r.departures);
      live += static_cast<double>(r.live_peers);
      completed += static_cast<double>(r.completed_leechers);
      mean_kbps += r.mean_leech_kbps;
      corr += r.strat.partner_rank_correlation;
    }
    const auto n = static_cast<double>(results.size());
    processes.add_row({mode, sim::fmt(arrivals / n, 0), sim::fmt(departures / n, 0),
                       sim::fmt(live / n, 0), sim::fmt(completed / n, 0),
                       sim::fmt(mean_kbps / n, 0), sim::fmt(corr / n, 3)});
  }
  bench::emit(cli, processes);
  bench::out(cli) << "\n(Poisson arrivals with exponential lifetimes hold a stationary open\n"
                     " population; the flash crowd doubles the swarm mid-warm-up and the\n"
                     " dynamic overlay absorbs it through recycled slots + re-announce)\n";
  return 0;
}
