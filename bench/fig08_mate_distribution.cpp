// Figure 8: mate-rank distribution D(i, .) in the independent
// 1-matching model for n = 5000, p = 0.5% — a well-ranked peer (200), a
// central peer (2500) and a low peer (4800). (Paper labels 1-based.)
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/independent_matching.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "p", "bins", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 5000));
  const double p = cli.get_double("p", 0.005);
  const auto bins = static_cast<std::size_t>(cli.get_int("bins", 25));

  bench::banner(cli, "Figure 8: mate distributions for peers 200, 2500, 4800 (n = " +
                std::to_string(n) + ", p = " + sim::fmt(p * 100.0, 2) + "%)");

  const std::vector<core::PeerId> peers{
      static_cast<core::PeerId>(n * 200 / 5000 - 1),
      static_cast<core::PeerId>(n * 2500 / 5000 - 1),
      static_cast<core::PeerId>(n * 4800 / 5000 - 1)};
  analysis::StreamingOptions opt;
  opt.n = n;
  opt.p = p;
  opt.capture_rows = peers;
  const analysis::StreamingResult result = analysis::independent_1matching_streaming(opt);

  std::vector<std::string> headers{"mate rank bin"};
  for (core::PeerId peer : peers) headers.push_back("D(" + std::to_string(peer + 1) + ", .)");
  sim::Table table(headers);
  const std::size_t width = n / bins;
  for (std::size_t b = 0; b < bins; ++b) {
    std::string label = "[";
    label += std::to_string(b * width + 1);
    label += ", ";
    label += std::to_string((b + 1) * width);
    label += "]";
    std::vector<std::string> row{std::move(label)};
    for (core::PeerId peer : peers) {
      const auto& dist = result.rows.at(peer);
      double mass = 0.0;
      for (std::size_t j = b * width; j < (b + 1) * width && j < n; ++j) mass += dist[j];
      row.push_back(sim::fmt(mass, 5));
    }
    table.add_row(row);
  }
  bench::emit(cli, table);

  strat::bench::out(cli) << "\nper-peer summary (paper: geometric-ish top, shifted symmetric bulk,\n"
               "truncated bottom with unmatched probability; worst peer ~ 1/2):\n";
  for (core::PeerId peer : peers) {
    const auto& dist = result.rows.at(peer);
    double mass = 0.0;
    double mean = 0.0;
    double peak = 0.0;
    std::size_t mode = 0;
    for (std::size_t j = 0; j < n; ++j) {
      mass += dist[j];
      mean += dist[j] * static_cast<double>(j + 1);
      if (dist[j] > peak) {
        peak = dist[j];
        mode = j + 1;
      }
    }
    strat::bench::out(cli) << "  peer " << peer + 1 << ": P(matched) = " << sim::fmt(mass, 4)
              << ", mean mate rank = " << sim::fmt(mass > 0 ? mean / mass : 0.0, 1)
              << ", mode = " << mode << ", peak = " << sim::fmt_sci(peak, 3) << "\n";
  }
  strat::bench::out(cli) << "  worst peer " << n << ": P(matched) = "
            << sim::fmt(result.mass[n - 1], 4) << " (paper: 1/2 in the limit)\n";
  return 0;
}
