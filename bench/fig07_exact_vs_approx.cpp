// Figure 7: the independence approximation's error at n = 3. All eight
// acceptance graphs are enumerated exactly; Algorithm 2 matches
// D(1,2) and D(1,3) but overestimates D(2,3) by p^3(1-p).
// (Paper labels are 1-based; code uses 0-based ranks.)
#include <iostream>
#include <vector>

#include "analysis/exact_small.hpp"
#include "analysis/independent_matching.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"csv"});

  bench::banner(cli, "Figure 7: exact vs independent-approximation probabilities, n = 3");
  sim::Table table({"p", "D(1,2) exact", "D(1,3) exact", "D(2,3) exact", "D(2,3) approx",
                    "error", "p^3(1-p)"});
  for (double p = 0.1; p <= 0.901; p += 0.1) {
    const analysis::ExactSmallModel exact(3, p);
    const analysis::Independent1Matching approx(3, p);
    const double err = approx.d(1, 2) - exact.d(1, 2);
    table.add_row({sim::fmt(p, 1), sim::fmt(exact.d(0, 1), 6), sim::fmt(exact.d(0, 2), 6),
                   sim::fmt(exact.d(1, 2), 6), sim::fmt(approx.d(1, 2), 6), sim::fmt(err, 6),
                   sim::fmt(p * p * p * (1.0 - p), 6)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(exact: D(1,2) = p, D(1,3) = p(1-p), D(2,3) = p(1-p)^2; Algorithm 2's\n"
               " D(2,3) = p(1-p)(1-p(1-p)) = exact + p^3(1-p) — negligible at small p.)\n";

  // Bonus: the error vanishes as p -> 0 also for larger tiny systems.
  bench::banner(cli, "max |exact - approx| over all pairs, n = 5");
  sim::Table t2({"p", "max abs error"});
  for (const double p : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    const analysis::ExactSmallModel exact(5, p);
    const analysis::Independent1Matching approx(5, p);
    double worst = 0.0;
    for (core::PeerId i = 0; i < 5; ++i) {
      for (core::PeerId j = 0; j < 5; ++j) {
        worst = std::max(worst, std::abs(exact.d(i, j) - approx.d(i, j)));
      }
    }
    t2.add_row({sim::fmt(p, 2), sim::fmt(worst, 6)});
  }
  bench::emit(cli, t2);
  return 0;
}
