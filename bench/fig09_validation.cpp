// Figure 9: validation of the independent b0-matching model against
// exact Monte-Carlo simulation — first/second choice distributions of
// peer 3000 for n = 5000, p = 1%, b0 = 2, centered at the peer's rank.
// The paper used 10^6 realizations ("several weeks"); the default here
// is 300 (increase with --realizations; the shape is already stable).
#include <iostream>
#include <thread>
#include <vector>

#include "analysis/independent_bmatching.hpp"
#include "analysis/monte_carlo.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "p", "realizations", "threads", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 5000));
  const double p = cli.get_double("p", 0.01);
  const auto realizations = static_cast<std::size_t>(cli.get_int("realizations", 300));
  const auto threads = static_cast<std::size_t>(
      cli.get_int("threads", static_cast<std::int64_t>(
                                 std::max(1u, std::thread::hardware_concurrency()))));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const auto peer = static_cast<core::PeerId>(n * 3000 / 5000 - 1);

  bench::banner(cli, "Figure 9: Algorithm 3 vs Monte-Carlo, peer " + std::to_string(peer + 1) +
                " (n = " + std::to_string(n) + ", p = " + sim::fmt(p * 100.0, 1) +
                "%, b0 = 2, " + std::to_string(realizations) + " realizations)");

  analysis::BMatchingOptions model_opt;
  model_opt.n = n;
  model_opt.p = p;
  model_opt.b0 = 2;
  model_opt.capture_rows = {peer};
  const auto model = analysis::analyze_bmatching(model_opt);

  analysis::MonteCarloOptions mc_opt;
  mc_opt.n = n;
  mc_opt.p = p;
  mc_opt.b0 = 2;
  mc_opt.realizations = realizations;
  mc_opt.tracked = {peer};
  mc_opt.threads = threads;
  graph::Rng rng(seed);
  const auto mc = analysis::estimate_mate_distribution(mc_opt, rng);

  // Ranking-offset bins, matching the paper's x axis (-800 .. 800).
  const long span = static_cast<long>(n) * 800 / 5000;
  const long bin = span / 10;
  sim::Table table({"ranking offset", "1st choice MC", "1st choice model", "2nd choice MC",
                    "2nd choice model"});
  const auto mc1 = mc.probability_row(0, 0);
  const auto mc2 = mc.probability_row(0, 1);
  const auto& md1 = model.rows.at(peer)[0];
  const auto& md2 = model.rows.at(peer)[1];
  for (long lo = -span; lo < span; lo += bin) {
    double m1 = 0.0;
    double m2 = 0.0;
    double a1 = 0.0;
    double a2 = 0.0;
    for (long off = lo; off < lo + bin; ++off) {
      const long j = static_cast<long>(peer) + off;
      if (j < 0 || j >= static_cast<long>(n)) continue;
      m1 += mc1[static_cast<std::size_t>(j)];
      m2 += mc2[static_cast<std::size_t>(j)];
      a1 += md1[static_cast<std::size_t>(j)];
      a2 += md2[static_cast<std::size_t>(j)];
    }
    std::string label = "[";
    label += std::to_string(lo);
    label += ",";
    label += std::to_string(lo + bin);
    label += ")";
    table.add_row({std::move(label), sim::fmt(m1, 4), sim::fmt(a1, 4), sim::fmt(m2, 4),
                   sim::fmt(a2, 4)});
  }
  bench::emit(cli, table);

  strat::bench::out(cli) << "\nmatch masses: model 1st " << sim::fmt(model.mass(peer, 0), 4) << ", MC 1st "
            << sim::fmt(mc.match_mass(0, 0), 4) << "; model 2nd "
            << sim::fmt(model.mass(peer, 1), 4) << ", MC 2nd "
            << sim::fmt(mc.match_mass(0, 1), 4) << "\n";

  // Total-variation distance per choice (binned): the accuracy headline.
  for (std::size_t c = 0; c < 2; ++c) {
    const auto mc_row = mc.probability_row(0, c);
    const auto& md_row = model.rows.at(peer)[c];
    double tv = 0.0;
    for (long lo = -static_cast<long>(peer); lo < static_cast<long>(n - peer); lo += bin) {
      double a = 0.0;
      double b = 0.0;
      for (long off = lo; off < lo + bin; ++off) {
        const long j = static_cast<long>(peer) + off;
        if (j < 0 || j >= static_cast<long>(n)) continue;
        a += mc_row[static_cast<std::size_t>(j)];
        b += md_row[static_cast<std::size_t>(j)];
      }
      tv += std::abs(a - b);
    }
    strat::bench::out(cli) << "binned total-variation distance, choice " << c + 1 << ": "
              << sim::fmt(tv / 2.0, 4) << "\n";
  }
  return 0;
}
