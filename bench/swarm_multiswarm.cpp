// Scenario driver: peers split across overlapping swarms.
//
// Multi-homed peers divide their upload capacity across their swarms,
// so inside each swarm they rank below their single-homed capacity
// twins — the matching model predicts they land in lower strata and
// download proportionally less per swarm. This driver sweeps the
// overlap fraction and reports the single- vs multi-homed aggregate
// rates plus per-swarm stratification.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv,
                     {"swarms", "peers", "warmup", "window", "threads", "seed", "csv"});
  const auto swarms = static_cast<std::size_t>(cli.get_int("swarms", 2));
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 80));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 10));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 30));
  const auto threads = static_cast<std::size_t>(
      cli.get_int("threads", static_cast<std::int64_t>(sim::recommended_threads())));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 51));

  bench::banner(cli, "Multi-swarm overlap sweep (" + std::to_string(swarms) + " swarms x " +
                         std::to_string(peers) + " peers)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();

  sim::Table table({"overlap", "distinct peers", "multi-homed", "single-home kbps",
                    "multi-home kbps", "multi/single ratio", "mean partner-rank corr",
                    "mean completion round"});
  for (const double overlap : {0.0, 0.2, 0.4}) {
    bt::MultiSwarmSpec spec;
    spec.num_swarms = swarms;
    spec.peers_per_swarm = peers;
    spec.overlap_fraction = overlap;
    spec.config.num_pieces = 512;
    spec.config.piece_kb = 256.0;
    spec.config.neighbor_degree = 25.0;
    spec.config.initial_completion = 0.5;
    spec.warmup_rounds = warmup;
    spec.measure_rounds = window;
    const std::size_t distinct = bt::distinct_peer_count(spec);
    spec.upload_kbps = model.representative_sample(distinct);
    const auto result = bt::run_multi_swarm(spec, seed, threads);

    double corr = 0.0;
    double completion = 0.0;
    for (const auto& s : result.per_swarm) {
      corr += s.strat.partner_rank_correlation;
      completion += s.mean_completion_round;
    }
    const auto k = static_cast<double>(result.per_swarm.size());
    const double ratio = result.mean_single_home_kbps > 0.0
                             ? result.mean_multi_home_kbps / result.mean_single_home_kbps
                             : 0.0;
    table.add_row({sim::fmt(overlap, 2), std::to_string(distinct),
                   std::to_string(result.multi_home_peers),
                   sim::fmt(result.mean_single_home_kbps, 0),
                   sim::fmt(result.mean_multi_home_kbps, 0), sim::fmt(ratio, 3),
                   sim::fmt(corr / k, 3), sim::fmt(completion / k, 1)});
  }
  bench::emit(cli, table);
  bench::out(cli)
      << "\n(a multi-homed peer brings 1/k of its capacity to each swarm and drops\n"
         " into lower strata there: its in-swarm download rate falls below its\n"
         " single-homed capacity twins' — divided attention is punished exactly\n"
         " as the stratification model says)\n";
  return 0;
}
