// Ablation: the choker's rate-estimation window. The reference client
// ranks reciprocation over ~2 choke intervals; rate_smoothing = 1.0
// uses the raw last interval (the paper's "last 10 seconds"), smaller
// alphas average over longer windows. Noisy estimates weaken TFT
// lock-in and hence stratification.
#include <iostream>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/swarm.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"peers", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 120));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 14));

  bench::banner(cli, "Ablation: choker rate-smoothing vs stratification quality");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto bw = model.representative_sample(peers);
  sim::Table table({"rate smoothing alpha", "partner-rank correlation",
                    "mean normalized offset", "reciprocated pairs"});
  for (const double alpha : {1.0, 0.5, 0.25, 0.1}) {
    graph::Rng rng(seed);
    bt::SwarmConfig cfg;
    cfg.num_peers = peers;
    cfg.seeds = 1;
    cfg.num_pieces = 2048;
    cfg.piece_kb = 1024.0;
    cfg.neighbor_degree = 30.0;
    cfg.initial_completion = 0.5;
    cfg.rate_smoothing = alpha;
    bt::Swarm swarm(cfg, bw, rng);
    swarm.run(20);
    swarm.reset_stratification();
    swarm.run(30);
    const auto report = swarm.stratification();
    table.add_row({sim::fmt(alpha, 2), sim::fmt(report.partner_rank_correlation, 3),
                   sim::fmt(report.mean_normalized_offset, 3),
                   std::to_string(report.reciprocated_pairs)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(alpha = 1.0 is the paper's raw 10-second window; moderate smoothing\n"
               " stabilizes partner selection, very long windows slow adaptation)\n";
  return 0;
}
