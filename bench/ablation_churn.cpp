// Ablation: churn semantics. The paper's "x/1000" rates keep n
// stationary (replacement). This compares replacement against
// removal-only and arrival-only at the same event rate.
#include <iostream>

#include "bench_common.hpp"
#include "core/churn.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "rate", "units", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 500));
  const double d = cli.get_double("d", 10.0);
  const double rate = cli.get_double("rate", 0.01);
  const double units = cli.get_double("units", 15.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  bench::banner(cli, "Ablation: churn kind at rate " + sim::fmt(rate * 1000.0, 1) + "/1000 (n = " +
                std::to_string(n) + ", d = " + sim::fmt(d, 0) + ")");

  sim::Table table(
      {"churn kind", "plateau disorder", "active peers at end", "arrivals", "departures"});
  struct Case {
    const char* name;
    core::ChurnKind kind;
  };
  for (const Case c : {Case{"replacement", core::ChurnKind::kReplacement},
                       Case{"removal-only", core::ChurnKind::kRemovalOnly},
                       Case{"arrival-only", core::ChurnKind::kArrivalOnly}}) {
    graph::Rng rng(seed);
    core::ChurnParams params;
    params.initial_peers = n;
    params.expected_degree = d;
    params.churn_rate = rate;
    params.kind = c.kind;
    core::ChurnSimulator sim_(params, rng);
    sim_.run(units / 2.0, 1);  // burn-in
    const auto traj = sim_.run(units / 2.0, 2);
    sim::OnlineStats plateau;
    for (const auto& pt : traj) plateau.add(pt.disorder);
    table.add_row({c.name, sim::fmt(plateau.mean(), 4), std::to_string(sim_.active_count()),
                   std::to_string(sim_.arrivals()), std::to_string(sim_.departures())});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(replacement keeps the population stationary — the paper's setting;\n"
               " removal-only shrinks the instance, arrival-only dilutes the degree.)\n";
  return 0;
}
