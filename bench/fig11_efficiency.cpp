// Figure 11: expected download/upload ratio as a function of the upload
// bandwidth offered per slot. b0 = 3 TFT slots out of 4 total, d = 20
// expected acceptable peers, bandwidths from the Figure 10 model.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/efficiency.hpp"
#include "sim/histogram.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "tft", "total", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2000));
  const double d = cli.get_double("d", 20.0);
  const auto tft = static_cast<std::size_t>(cli.get_int("tft", 3));
  const auto total = static_cast<std::size_t>(cli.get_int("total", 4));

  bench::banner(cli, "Figure 11: expected D/U ratio vs upload bandwidth per slot (b0 = " +
                std::to_string(tft) + ", d = " + sim::fmt(d, 0) + ", n = " +
                std::to_string(n) + ")");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  bt::EfficiencyOptions opt;
  opt.n = n;
  opt.tft_slots = tft;
  opt.total_slots = total;
  opt.mean_acceptable = d;
  const auto curve = bt::expected_efficiency_curve(model, opt);

  // Bin by per-slot bandwidth (log bins over 10^0.5 .. 10^4.5).
  const std::size_t bins = 36;
  std::vector<double> eff_sum(bins, 0.0);
  std::vector<double> count(bins, 0.0);
  const double lo = 0.5;
  const double hi = 4.5;
  for (const auto& pt : curve) {
    const double lx = std::log10(pt.per_slot_kbps);
    auto b = static_cast<long>((lx - lo) / (hi - lo) * static_cast<double>(bins));
    b = std::clamp<long>(b, 0, static_cast<long>(bins) - 1);
    eff_sum[static_cast<std::size_t>(b)] += pt.efficiency;
    count[static_cast<std::size_t>(b)] += 1.0;
  }
  sim::Table table({"bandwidth per slot (kbps)", "peers", "expected efficiency"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t b = 0; b < bins; ++b) {
    if (count[b] == 0.0) continue;
    const double center = std::pow(10.0, lo + (static_cast<double>(b) + 0.5) / bins * (hi - lo));
    const double eff = eff_sum[b] / count[b];
    table.add_row({sim::fmt(center, 1), sim::fmt(count[b], 0), sim::fmt(eff, 3)});
    xs.push_back(std::log10(center));
    ys.push_back(eff);
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\nefficiency vs log10(bandwidth/slot):\n" << sim::ascii_series(xs, ys, 50, 2, 3);

  strat::bench::out(cli) << "\npaper observations reproduced:\n"
            << "  best peer efficiency:  " << sim::fmt(curve.front().efficiency, 3)
            << "  (paper: best peers suffer, < 1)\n";
  double tail = 0.0;
  for (std::size_t i = n - n / 10; i < n; ++i) tail += curve[i].efficiency;
  strat::bench::out(cli) << "  bottom-decile mean:    " << sim::fmt(tail / static_cast<double>(n / 10), 3)
            << "  (paper: lowest peers have high efficiency)\n";
  double peak = 0.0;
  std::size_t peak_rank = 0;
  for (const auto& pt : curve) {
    if (pt.efficiency > peak) {
      peak = pt.efficiency;
      peak_rank = pt.rank;
    }
  }
  strat::bench::out(cli) << "  max efficiency:        " << sim::fmt(peak, 3) << " at "
            << sim::fmt(curve[peak_rank].per_slot_kbps, 1)
            << " kbps/slot (paper: peaks just above density peaks)\n";
  strat::bench::out(cli) << "  unmatched probability of the worst peer: "
            << sim::fmt(1.0 - curve.back().match_probability, 3)
            << " (paper: Figure 8(c) cut distribution)\n";
  return 0;
}
