// Ablation (§3 "Note on ties"): quantize the intrinsic scores into a
// handful of tie classes, break ties by id, and check the paper's
// simulation claim that the stratification results survive. Weak
// stability (no strictly-improving pair) holds by construction; the
// stratification metrics barely move until the quantization becomes
// absurdly coarse.
#include <iostream>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "core/ties.hpp"
#include "graph/erdos_renyi.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "b0", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 600));
  const double d = cli.get_double("d", 16.0);
  const auto b0 = static_cast<std::uint32_t>(cli.get_int("b0", 3));
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 16)));

  bench::banner(cli, "Ablation: ties in the global ranking (n = " + std::to_string(n) + ", d = " +
                sim::fmt(d, 0) + ", b0 = " + std::to_string(b0) + ")");

  // Random scores: quantization + id tie-breaking genuinely permutes
  // the ranking (with sorted scores the ablation would be a no-op).
  std::vector<double> scores(n);
  for (auto& s : scores) s = rng.uniform();
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);

  sim::Table table({"tie classes", "mean |rank offset| / n", "MMO / n", "weakly stable",
                    "matched peers"});
  for (const std::size_t levels : {n, 100ul, 20ul, 8ul, 3ul}) {
    const core::TieLevels ties = core::quantize_scores(scores, levels);
    const core::ExplicitAcceptance acc(g, ties.ranking);
    const core::Matching m =
        core::stable_configuration(acc, ties.ranking, std::vector<std::uint32_t>(n, b0));
    std::size_t matched = 0;
    for (core::PeerId p = 0; p < n; ++p) matched += m.degree(p) > 0 ? std::size_t{1} : std::size_t{0};
    table.add_row({levels == n ? "strict (" + std::to_string(n) + ")" : std::to_string(levels),
                   sim::fmt(core::mean_abs_offset(m, ties.ranking) / static_cast<double>(n), 4),
                   sim::fmt(core::mean_max_offset(m, ties.ranking) / static_cast<double>(n), 4),
                   core::is_weakly_stable(acc, ties, m) ? "yes" : "NO",
                   std::to_string(matched)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(the tie-broken stable configuration is always weakly stable; offsets\n"
               " stay essentially unchanged down to a few dozen classes — the paper's\n"
               " \"our results hold if we allow ties\")\n";
  return 0;
}
