// Conjecture 1 (fluid limit): with p = d/n, the scaled mate distribution
// of the best peer converges to the density d e^{-beta d}. Reproduces
// the alpha = 0 special case the paper derives in §5.2.1.
#include <iostream>
#include <vector>

#include "analysis/fluid_limit.hpp"
#include "analysis/independent_matching.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"d", "csv"});
  const double d = cli.get_double("d", 10.0);

  bench::banner(cli, "Conjecture 1: fluid limit of the best peer's mate distribution (d = " +
                sim::fmt(d, 0) + ")");

  const std::vector<std::size_t> ns{500, 1000, 2000, 4000, 8000};
  sim::Table table({"beta", "d e^{-beta d}", "n=500", "n=1000", "n=2000", "n=4000", "n=8000"});
  std::vector<std::vector<double>> rows;
  for (const std::size_t n : ns) {
    analysis::StreamingOptions opt;
    opt.n = n;
    opt.p = d / static_cast<double>(n);
    opt.capture_rows = {0};
    rows.push_back(analysis::independent_1matching_streaming(opt).rows.at(0));
  }
  for (double beta = 0.02; beta <= 0.5001; beta += 0.04) {
    std::vector<std::string> row{sim::fmt(beta, 2),
                                 sim::fmt(analysis::fluid_density_alpha0(beta, d), 4)};
    for (std::size_t k = 0; k < ns.size(); ++k) {
      const auto j = static_cast<std::size_t>(beta * static_cast<double>(ns[k]));
      row.push_back(sim::fmt(static_cast<double>(ns[k]) * rows[k][j], 4));
    }
    table.add_row(row);
  }
  bench::emit(cli, table);

  strat::bench::out(cli) << "\nsup-norm error vs the analytic density (must shrink with n):\n";
  for (std::size_t k = 0; k < ns.size(); ++k) {
    strat::bench::out(cli) << "  n = " << ns[k] << ": "
              << sim::fmt(analysis::fluid_limit_sup_error(rows[k], d), 4) << "\n";
  }
  return 0;
}
