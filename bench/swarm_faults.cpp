// Scenario driver: fault injection vs. stratification.
//
// The paper's stratification result assumes a well-behaved protocol
// layer: every announce lands, every connect sticks, every planned
// transfer commits. This driver measures how robust the equilibrium
// is when the infrastructure misbehaves — a grid over tracker outage
// frequency (period of the down window, with churn active so degraded
// peers accumulate) crossed with per-lane transfer loss, plus a second
// table over connect-level faults (flaky dials and NAT-ed
// populations). Each point runs replacement churn through the dynamic
// overlay and averages parallel replications. Output: fault
// accounting (failed/retried announces, lost lanes, connect failures)
// next to the stratification window metrics, so the rank correlation
// can be read directly against the injected fault intensity.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "sim/parallel.hpp"

namespace {

struct FaultAverages {
  double arrivals = 0.0;
  double completed = 0.0;
  double mean_kbps = 0.0;
  double corr = 0.0;
  double offset = 0.0;
  double failed_announces = 0.0;
  double retries = 0.0;
  double connect_failures = 0.0;
  double nat_rejections = 0.0;
  double lost_lanes = 0.0;
};

FaultAverages average(const std::vector<strat::bt::ScenarioResult>& results) {
  FaultAverages a;
  for (const auto& r : results) {
    a.arrivals += static_cast<double>(r.arrivals);
    a.completed += static_cast<double>(r.completed_leechers);
    a.mean_kbps += r.mean_leech_kbps;
    a.corr += r.strat.partner_rank_correlation;
    a.offset += r.strat.mean_normalized_offset;
    a.failed_announces += static_cast<double>(r.fault_failed_announces);
    a.retries += static_cast<double>(r.fault_retries);
    a.connect_failures += static_cast<double>(r.fault_connect_failures);
    a.nat_rejections += static_cast<double>(r.fault_nat_rejections);
    a.lost_lanes += static_cast<double>(r.fault_lost_lanes);
  }
  const auto n = static_cast<double>(results.size());
  a.arrivals /= n;
  a.completed /= n;
  a.mean_kbps /= n;
  a.corr /= n;
  a.offset /= n;
  a.failed_announces /= n;
  a.retries /= n;
  a.connect_failures /= n;
  a.nat_rejections /= n;
  a.lost_lanes /= n;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv,
                     {"peers", "reps", "warmup", "window", "threads", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 1000));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 15));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 30));
  const auto threads = static_cast<std::size_t>(
      cli.get_int("threads", static_cast<std::int64_t>(sim::recommended_threads())));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 53));

  bench::banner(cli, "Fault injection vs. stratification (" + std::to_string(peers) +
                         " peers, " + std::to_string(reps) + " replications, " +
                         std::to_string(threads) + " threads)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  std::vector<std::uint64_t> seeds(reps);
  for (std::size_t i = 0; i < reps; ++i) seeds[i] = base_seed + i;

  bt::SwarmScenario base;
  base.config.num_peers = peers;
  base.config.seeds = std::max<std::size_t>(1, peers / 1000);
  base.config.num_pieces = 1024;
  base.config.piece_kb = 1024.0;
  base.config.neighbor_degree = 25.0;
  base.config.initial_completion = 0.5;
  base.upload_kbps = model.representative_sample(peers);
  base.warmup_rounds = warmup;
  base.measure_rounds = window;
  // Churn keeps the announce path hot: without arrivals and
  // re-announces, tracker outages would have nothing to break.
  base.churn.replacement_rate = bt::paper_replacement_rate(5.0, peers);
  base.churn.arrival_completion = 0.5;
  base.churn.reannounce_interval = 10;

  // --- outage frequency x lane loss ----------------------------------
  sim::Table table({"outage period", "down frac", "lane loss", "arrivals",
                    "failed announces", "retries", "lost lanes", "completed",
                    "mean leech kbps", "partner-rank corr", "mean |offset|/n"});
  for (const std::size_t period : {std::size_t{0}, std::size_t{20}, std::size_t{10},
                                   std::size_t{5}}) {
    for (const double loss : {0.0, 0.02, 0.1}) {
      bt::SwarmScenario scenario = base;
      // A fixed 40% duty cycle: more frequent outages also mean more
      // frequent recoveries, so "period" sweeps the churn-vs-outage
      // beat frequency at constant downtime.
      scenario.config.faults.outage_period = period;
      scenario.config.faults.outage_duration = period * 2 / 5;
      scenario.config.faults.lane_loss_prob = loss;
      const auto avg = average(bt::run_replications(scenario, seeds, threads));
      const double down_frac =
          period == 0 ? 0.0
                      : static_cast<double>(period * 2 / 5) / static_cast<double>(period);
      table.add_row({period == 0 ? "none" : sim::fmt(static_cast<double>(period), 0),
                     sim::fmt(down_frac, 2), sim::fmt(loss, 2), sim::fmt(avg.arrivals, 0),
                     sim::fmt(avg.failed_announces, 0), sim::fmt(avg.retries, 0),
                     sim::fmt(avg.lost_lanes, 0), sim::fmt(avg.completed, 0),
                     sim::fmt(avg.mean_kbps, 0), sim::fmt(avg.corr, 3),
                     sim::fmt(avg.offset, 3)});
    }
  }
  bench::emit(cli, table);
  bench::out(cli) << "\n(tracker outages starve joiners of neighbors until backoff retries\n"
                     " land, and lane loss thins realized transfers — but stratification is\n"
                     " an equilibrium of repeated TFT choking, so the rank correlation\n"
                     " degrades smoothly with fault intensity instead of collapsing)\n\n";

  // --- connect-level faults: flaky dials x NAT-ed fraction ------------
  sim::Table connects({"connect fail prob", "nat fraction", "connect failures",
                       "nat rejections", "arrivals", "completed", "mean leech kbps",
                       "partner-rank corr"});
  for (const double fail : {0.0, 0.2, 0.5}) {
    for (const double nat : {0.0, 0.25, 0.5}) {
      bt::SwarmScenario scenario = base;
      scenario.config.faults.connect_failure_prob = fail;
      scenario.config.faults.nat_fraction = nat;
      const auto avg = average(bt::run_replications(scenario, seeds, threads));
      connects.add_row({sim::fmt(fail, 2), sim::fmt(nat, 2),
                        sim::fmt(avg.connect_failures, 0), sim::fmt(avg.nat_rejections, 0),
                        sim::fmt(avg.arrivals, 0), sim::fmt(avg.completed, 0),
                        sim::fmt(avg.mean_kbps, 0), sim::fmt(avg.corr, 3)});
    }
  }
  bench::emit(cli, connects);
  bench::out(cli) << "\n(flaky dials and NAT-ed candidates thin the overlay acceptance graph\n"
                     " joiners see; the bounded-retry dialer and re-announce sweep keep\n"
                     " degrees near target until both faults are severe at once)\n";
  return 0;
}
