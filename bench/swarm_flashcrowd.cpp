// §6 assumption check: "during the post flash crowd phase, all blocks
// have roughly the same repartition, because of the download rarest
// first policy". Starting from a flash crowd (every leecher empty, one
// seed), rarest-first drives the piece-availability dispersion down;
// once the coefficient of variation is small, bandwidth — not content —
// is the binding constraint and the matching model applies.
#include <iostream>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/swarm.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"peers", "rounds", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 100));
  const auto rounds = static_cast<std::size_t>(cli.get_int("rounds", 60));
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 13)));

  bench::banner(cli, "Flash crowd: rarest-first equalizes block repartition (" +
                std::to_string(peers) + " leechers)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  bt::SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 256;
  cfg.piece_kb = 128.0;
  cfg.neighbor_degree = 25.0;
  cfg.post_flashcrowd = false;  // everyone starts empty
  bt::Swarm swarm(cfg, model.representative_sample(peers), rng);

  sim::Table table({"round", "mean copies/piece", "min", "max", "coeff. of variation",
                    "completed leechers"});
  const std::size_t stride = std::max<std::size_t>(1, rounds / 12);
  for (std::size_t r = 0; r <= rounds; r += stride) {
    const auto stats = swarm.availability_stats();
    table.add_row({std::to_string(swarm.rounds_elapsed()), sim::fmt(stats.mean, 1),
                   std::to_string(stats.min), std::to_string(stats.max),
                   sim::fmt(stats.coefficient_of_variation, 3),
                   std::to_string(swarm.completed_leechers())});
    if (r < rounds) swarm.run(stride);
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(in the flash-crowd phase availability is wildly uneven — the seed is\n"
               " the only source; rarest-first pushes the coefficient of variation\n"
               " down, establishing the post-flash-crowd regime the §6 model assumes)\n";
  return 0;
}
