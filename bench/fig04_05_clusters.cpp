// Figures 4 and 5: the collaboration graph of constant b0-matching on a
// complete acceptance graph is a chain of disjoint K_{b0+1} clusters
// (Figure 4); granting the best peer one extra connection chains them
// into a single component (Figure 5). Also prints the §4.1 "b0 >= 3"
// connectivity remark data.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/components.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "b0", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 9));
  const auto b0 = static_cast<std::uint32_t>(cli.get_int("b0", 2));

  bench::banner(cli, "Figure 4: constant b0-matching on a complete graph -> K_{b0+1} clusters");
  const core::Matching fig4 = core::stable_configuration_complete(std::vector<std::uint32_t>(n, b0));
  const auto comps4 = graph::connected_components(core::collaboration_graph(fig4));
  sim::Table t4({"peer", "mates", "cluster"});
  for (core::PeerId p = 0; p < n; ++p) {
    std::string mates;
    for (core::PeerId q : fig4.mates(p)) mates += std::to_string(q + 1) + " ";
    t4.add_row({std::to_string(p + 1), mates, std::to_string(comps4.label[p] + 1)});
  }
  bench::emit(cli, t4);
  strat::bench::out(cli) << "clusters: " << comps4.count() << " (size " << b0 + 1 << " each"
            << (n % (b0 + 1) != 0 ? ", remainder truncated" : "") << ")\n\n";

  bench::banner(cli, "Figure 5: one extra connection for peer 1 chains the clusters");
  std::vector<std::uint32_t> caps(n, b0);
  caps[0] = b0 + 1;
  const core::Matching fig5 = core::stable_configuration_complete(caps);
  const auto g5 = core::collaboration_graph(fig5);
  const auto comps5 = graph::connected_components(g5);
  sim::Table t5({"peer", "mates", "cluster"});
  for (core::PeerId p = 0; p < n; ++p) {
    std::string mates;
    for (core::PeerId q : fig5.mates(p)) mates += std::to_string(q + 1) + " ";
    t5.add_row({std::to_string(p + 1), mates, std::to_string(comps5.label[p] + 1)});
  }
  bench::emit(cli, t5);
  strat::bench::out(cli) << "connected: " << (graph::is_connected(g5) ? "yes" : "no") << " ("
            << comps5.count() << " component(s))\n\n";

  bench::banner(cli, "S4.1 note: connectivity lower bound behind BitTorrent's >= 3 TFT slots");
  sim::Table t6({"b0", "components (n=12)", "connected"});
  for (std::uint32_t b = 1; b <= 4; ++b) {
    const core::Matching m = core::stable_configuration_complete(std::vector<std::uint32_t>(12, b));
    const auto g = core::collaboration_graph(m);
    const auto comps = graph::connected_components(g);
    t6.add_row({std::to_string(b), std::to_string(comps.count()),
                graph::is_connected(g) ? "yes" : "no"});
  }
  bench::emit(cli, t6);
  strat::bench::out(cli) << "(1-regular graphs are disconnected; the cycle is the unique connected\n"
               " 2-regular graph; constant b-matching clusters are never connected for\n"
               " n > b0+1 — hence the default of 4 slots = 3 TFT + 1 optimistic.)\n";
  return 0;
}
