// Extension (§1's peer-sampling reference): matching dynamics over
// gossip-discovered views instead of a static acceptance graph. Frozen
// views converge to the static instance's stable state and stop; gossip
// keeps discovering better mates and drives the matching toward the
// complete-knowledge stable configuration (adjacent-rank pairing).
#include <iostream>

#include "bench_common.hpp"
#include "core/gossip.hpp"
#include "core/metrics.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"peers", "view", "units", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 200));
  const auto view = static_cast<std::size_t>(cli.get_int("view", 10));
  const double units = cli.get_double("units", 120.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 12));

  bench::banner(cli, "Extension: gossip-based rank discovery (n = " + std::to_string(peers) +
                ", view " + std::to_string(view) + ")");

  sim::Table table({"initiatives/peer", "disorder (frozen views)", "disorder (gossip 4/unit)",
                    "mean offset (gossip)"});
  graph::Rng rng_frozen(seed);
  core::GossipParams frozen;
  frozen.peers = peers;
  frozen.view_size = view;
  frozen.shuffles_per_unit = 0.0;
  core::GossipSimulator frozen_sim(frozen, rng_frozen);

  graph::Rng rng_gossip(seed + 1);
  core::GossipParams gossip = frozen;
  gossip.shuffles_per_unit = 4.0;
  core::GossipSimulator gossip_sim(gossip, rng_gossip);

  const core::GlobalRanking ranking = core::GlobalRanking::identity(peers);
  const double step = units / 12.0;
  for (int i = 0; i <= 12; ++i) {
    table.add_row({sim::fmt(static_cast<double>(i) * step, 0),
                   sim::fmt(frozen_sim.disorder(), 3), sim::fmt(gossip_sim.disorder(), 3),
                   sim::fmt(core::mean_abs_offset(gossip_sim.current(), ranking), 1)});
    if (i < 12) {
      frozen_sim.run(step, 1);
      gossip_sim.run(step, 1);
    }
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(a random 1-matching would sit at mean offset ~" << peers / 3
            << "; gossip keeps sorting toward offset 1 — the complete-knowledge\n"
               " adjacent-rank pairing — while frozen views plateau at the static\n"
               " instance's stable state)\n";
  return 0;
}
