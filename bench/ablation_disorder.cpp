// Ablation: the paper's 1-matching disorder metric vs this library's
// slotwise b-matching generalization (DESIGN.md §6). At b = 1 they are
// identical; at b > 1 only the generalization applies, and it should
// decay monotonically along converging dynamics just like the original.
#include <iostream>

#include "bench_common.hpp"
#include "core/dynamics.hpp"
#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 400));
  const double d = cli.get_double("d", 12.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));

  bench::banner(cli, "Ablation: disorder metric variants");

  // b = 1: paper metric and generalization agree exactly.
  {
    graph::Rng rng(seed);
    const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
    const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
    const core::ExplicitAcceptance acc(g, ranking);
    core::DynamicsEngine engine(acc, ranking, std::vector<std::uint32_t>(n, 1),
                                core::Strategy::kBestMate, rng);
    double max_gap = 0.0;
    for (int step = 0; step < 12; ++step) {
      engine.run(0.5, 1);
      const double paper = core::disorder_1matching(engine.current(), engine.stable(), ranking);
      const double general = core::disorder_bmatching(engine.current(), engine.stable(), ranking);
      max_gap = std::max(max_gap, std::abs(paper - general));
    }
    strat::bench::out(cli) << "b = 1: max |paper - generalized| along a trajectory: "
              << sim::fmt_sci(max_gap, 2) << " (identical by construction)\n\n";
  }

  // b = 3: the generalized metric traces convergence.
  graph::Rng rng(seed + 1);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::DynamicsEngine engine(acc, ranking, std::vector<std::uint32_t>(n, 3),
                              core::Strategy::kBestMate, rng);
  sim::Table table({"initiatives/peer", "generalized disorder (b=3)"});
  for (int step = 0; step <= 20; ++step) {
    table.add_row({sim::fmt(static_cast<double>(engine.initiatives()) / static_cast<double>(n), 1),
                   sim::fmt(engine.disorder(), 4)});
    engine.run(0.5, 1);
  }
  bench::emit(cli, table);
  return 0;
}
