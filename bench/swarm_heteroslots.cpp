// Scenario driver: heterogeneous per-peer TFT slot counts.
//
// §6 of the paper treats the slot count b as a global constant; real
// clients scale it with capacity. This driver compares uniform slot
// policies against a capacity-scaled assignment (fast peers split
// their capacity across more slots), measuring what that does to
// stratification sharpness and to the rate spread between deciles.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/scenario.hpp"
#include "sim/parallel.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv,
                     {"peers", "reps", "warmup", "window", "threads", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 120));
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", 3));
  const auto warmup = static_cast<std::size_t>(cli.get_int("warmup", 10));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 30));
  const auto threads = static_cast<std::size_t>(
      cli.get_int("threads", static_cast<std::int64_t>(sim::recommended_threads())));
  const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 61));

  bench::banner(cli, "Heterogeneous TFT slot policies (" + std::to_string(peers) +
                         " leechers, " + std::to_string(reps) + " replications)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const std::vector<double> bw = model.representative_sample(peers);
  std::vector<std::uint64_t> seeds(reps);
  for (std::size_t i = 0; i < reps; ++i) seeds[i] = base_seed + i;

  struct Policy {
    std::string name;
    std::vector<std::size_t> slots;  // empty = uniform via tft_slots
    std::size_t uniform = 0;
  };
  std::vector<Policy> policies;
  policies.push_back({"uniform b=1", {}, 1});
  policies.push_back({"uniform b=3", {}, 3});
  policies.push_back({"uniform b=5", {}, 5});
  policies.push_back({"capacity-scaled 1..8", bt::capacity_scaled_slots(bw, 1, 8), 0});

  sim::Table table({"policy", "mean leech kbps", "top decile kbps", "bottom decile kbps",
                    "top/bottom", "partner-rank corr", "mean |offset|/n"});
  for (const Policy& policy : policies) {
    bt::SwarmScenario scenario;
    scenario.config.num_peers = peers;
    scenario.config.seeds = 1;
    scenario.config.num_pieces = 512;
    scenario.config.piece_kb = 256.0;
    scenario.config.neighbor_degree = 25.0;
    scenario.config.initial_completion = 0.5;
    if (policy.slots.empty()) {
      scenario.config.tft_slots = policy.uniform;
    } else {
      scenario.config.tft_slots_per_peer = policy.slots;
    }
    scenario.upload_kbps = bw;
    scenario.warmup_rounds = warmup;
    scenario.measure_rounds = window;
    const auto results = bt::run_replications(scenario, seeds, threads);

    double mean_kbps = 0.0;
    double top = 0.0;
    double bottom = 0.0;
    double corr = 0.0;
    double offset = 0.0;
    for (const auto& r : results) {
      mean_kbps += r.mean_leech_kbps;
      top += r.top_decile_kbps;
      bottom += r.bottom_decile_kbps;
      corr += r.strat.partner_rank_correlation;
      offset += r.strat.mean_normalized_offset;
    }
    const auto n = static_cast<double>(results.size());
    const double spread = bottom > 0.0 ? top / bottom : 0.0;
    table.add_row({policy.name, sim::fmt(mean_kbps / n, 0), sim::fmt(top / n, 0),
                   sim::fmt(bottom / n, 0), sim::fmt(spread, 2), sim::fmt(corr / n, 3),
                   sim::fmt(offset / n, 3)});
  }
  bench::emit(cli, table);
  bench::out(cli)
      << "\n(few slots sharpen stratification — fast peers lock onto fast mates;\n"
         " capacity-scaled slots let the top deciles irrigate more of the swarm,\n"
         " trading top-end rates for a flatter efficiency curve, cf. Fig. 11)\n";
  return 0;
}
