// Figure 1: starting from the empty configuration, disorder vs
// initiatives-per-peer for (n, d) in {(100, 50), (1000, 10), (1000, 50)}
// — 1-matching, best-mate initiatives, random peer per step.
#include <iostream>
#include <map>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamics.hpp"
#include "graph/erdos_renyi.hpp"

namespace {

using namespace strat;

std::vector<core::TrajectoryPoint> run_case(std::size_t n, double d, double units,
                                            std::uint64_t seed) {
  graph::Rng rng(seed);
  const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);
  core::DynamicsEngine engine(acc, ranking, std::vector<std::uint32_t>(n, 1),
                              core::Strategy::kBestMate, rng);
  return engine.run(units, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const strat::sim::Cli cli(argc, argv, {"units", "seed", "csv"});
  const double units = cli.get_double("units", 40.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  strat::bench::banner(cli, 
      "Figure 1: convergence towards the stable state from the empty configuration");

  struct Case {
    std::size_t n;
    double d;
  };
  const std::vector<Case> cases{{100, 50.0}, {1000, 10.0}, {1000, 50.0}};
  std::vector<std::vector<strat::core::TrajectoryPoint>> runs;
  for (const Case& c : cases) runs.push_back(run_case(c.n, c.d, units, seed));

  strat::sim::Table table(
      {"initiatives/peer", "disorder n=100,d=50", "disorder n=1000,d=10", "disorder n=1000,d=50"});
  // Sample on the common half-unit grid.
  const std::size_t points = static_cast<std::size_t>(units * 2.0) + 1;
  for (std::size_t i = 0; i < points; ++i) {
    const double x = static_cast<double>(i) / 2.0;
    std::vector<std::string> row{strat::sim::fmt(x, 1)};
    for (const auto& run : runs) {
      // Trajectories are sampled twice per unit; index i matches x.
      const std::size_t ix = std::min(i, run.size() - 1);
      row.push_back(strat::sim::fmt(run[ix].disorder, 4));
    }
    table.add_row(row);
  }
  strat::bench::emit(cli, table);

  // Paper check: convergence in fewer than d base units.
  strat::bench::out(cli) << "\nconvergence (disorder == 0) reached by:\n";
  for (std::size_t c = 0; c < cases.size(); ++c) {
    double reached = -1.0;
    for (const auto& pt : runs[c]) {
      if (pt.disorder == 0.0) {
        reached = pt.initiatives_per_peer;
        break;
      }
    }
    strat::bench::out(cli) << "  n=" << cases[c].n << ", d=" << cases[c].d << ": "
              << (reached < 0 ? "not reached" : strat::sim::fmt(reached, 1) + " units")
              << " (paper: < d units)\n";
  }
  return 0;
}
