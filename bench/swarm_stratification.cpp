// Protocol-level validation: the round-based BitTorrent swarm stratifies
// its reciprocated TFT exchanges by bandwidth rank, as the matching
// model predicts (§6's premise, measured by Bharambe/Legout et al.).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "bittorrent/swarm.hpp"
#include "core/metrics.hpp"
#include "core/solver.hpp"
#include "graph/erdos_renyi.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"peers", "degree", "burnin", "window", "seed", "csv"});
  const auto peers = static_cast<std::size_t>(cli.get_int("peers", 150));
  const double degree = cli.get_double("degree", 30.0);
  const auto burnin = static_cast<std::size_t>(cli.get_int("burnin", 20));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 30));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 6));

  bench::banner(cli, "Swarm stratification vs matching-model prediction (" +
                std::to_string(peers) + " leechers)");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto bw = model.representative_sample(peers);

  // Matching-model prediction at the same scale.
  std::vector<double> per_slot(peers);
  for (std::size_t i = 0; i < peers; ++i) per_slot[i] = bw[i] / 4.0;
  const core::GlobalRanking ranking = core::GlobalRanking::from_scores(per_slot);
  graph::Rng rng_model(seed);
  const graph::Graph g = graph::erdos_renyi_gnd(peers, degree, rng_model);
  const core::ExplicitAcceptance acc(g, ranking);
  const core::Matching matched =
      core::stable_configuration(acc, ranking, std::vector<std::uint32_t>(peers, 3));
  const double model_offset =
      core::mean_abs_offset(matched, ranking) / static_cast<double>(peers);

  // Swarm measurement: long-lived payload, bootstrap excluded.
  bt::SwarmConfig cfg;
  cfg.num_peers = peers;
  cfg.seeds = 1;
  cfg.num_pieces = 2048;
  cfg.piece_kb = 1024.0;
  cfg.neighbor_degree = degree;
  cfg.initial_completion = 0.5;
  graph::Rng rng_swarm(seed + 1);
  bt::Swarm swarm(cfg, bw, rng_swarm);
  swarm.run(burnin);
  swarm.reset_stratification();
  swarm.run(window);
  const auto report = swarm.stratification();

  sim::Table table({"metric", "matching model", "swarm (TFT protocol)", "random pairing"});
  table.add_row({"mean |rank offset| / n", sim::fmt(model_offset, 3),
                 sim::fmt(report.mean_normalized_offset, 3), "~0.333"});
  table.add_row({"partner-rank correlation", "1.000 (by construction)",
                 sim::fmt(report.partner_rank_correlation, 3), "~0"});
  table.add_row({"reciprocated pairs", sim::fmt(static_cast<double>(matched.connection_count()), 0),
                 std::to_string(report.reciprocated_pairs), "-"});
  bench::emit(cli, table);

  // Per-decile mean partner rank in the swarm: the stratification bands.
  strat::bench::out(cli) << "\nmean leech-phase download rate by bandwidth decile (kbps):\n";
  const std::size_t decile = peers / 10;
  for (std::size_t d10 = 0; d10 < 10; ++d10) {
    double sum = 0.0;
    for (std::size_t i = d10 * decile; i < (d10 + 1) * decile; ++i) {
      sum += swarm.leech_download_kbps(static_cast<core::PeerId>(i));
    }
    strat::bench::out(cli) << "  decile " << d10 + 1 << " (ranks " << d10 * decile + 1 << ".."
              << (d10 + 1) * decile << "): " << sim::fmt(sum / static_cast<double>(decile), 0)
              << "\n";
  }
  return 0;
}
