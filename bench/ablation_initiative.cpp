// Ablation: convergence speed of the three initiative strategies. The
// paper simulates best-mate only; Theorem 1 guarantees all three reach
// the same stable state, but the information each requires differs and
// so does the wall-clock (in initiatives) to converge.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/dynamics.hpp"
#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "seeds", "maxunits", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 500));
  const double d = cli.get_double("d", 10.0);
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 5));
  const double max_units = cli.get_double("maxunits", 2000.0);

  bench::banner(cli, "Ablation: initiative strategy vs convergence speed (n = " + std::to_string(n) +
                ", d = " + sim::fmt(d, 0) + ", 1-matching)");

  sim::Table table({"strategy", "knowledge required", "mean units to stable", "min", "max",
                    "active fraction"});
  const char* knowledge[] = {"ranks + willingness", "ranks only", "none"};
  for (const core::Strategy s :
       {core::Strategy::kBestMate, core::Strategy::kDecremental, core::Strategy::kRandom}) {
    sim::OnlineStats units;
    double active_fraction = 0.0;
    for (std::size_t k = 0; k < seeds; ++k) {
      graph::Rng rng(40 + k);
      const core::GlobalRanking ranking = core::GlobalRanking::identity(n);
      const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
      const core::ExplicitAcceptance acc(g, ranking);
      core::DynamicsEngine engine(acc, ranking, std::vector<std::uint32_t>(n, 1), s, rng);
      units.add(engine.run_until_stable(max_units));
      active_fraction += static_cast<double>(engine.active_initiatives()) /
                         static_cast<double>(engine.initiatives());
    }
    table.add_row({core::strategy_name(s), knowledge[static_cast<int>(s)],
                   sim::fmt(units.mean(), 1), sim::fmt(units.min(), 1),
                   sim::fmt(units.max(), 1),
                   sim::fmt(active_fraction / static_cast<double>(seeds), 3)});
  }
  bench::emit(cli, table);
  strat::bench::out(cli) << "\n(best-mate converges in < d units as the paper reports; random pays a\n"
               " large constant for knowing nothing; decremental sits in between.)\n";
  return 0;
}
