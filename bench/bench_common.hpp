// Shared plumbing for the figure-reproduction harnesses.
#pragma once

#include <iostream>
#include <string>

#include "sim/cli.hpp"
#include "sim/table.hpp"

namespace strat::bench {

/// Prints a table as CSV when --csv was passed, aligned ASCII otherwise.
inline void emit(const sim::Cli& cli, const sim::Table& table) {
  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.render());
}

/// Standard banner: what this binary reproduces.
inline void banner(const std::string& what) {
  std::cout << "== " << what << " ==\n";
}

}  // namespace strat::bench
