// Shared plumbing for the figure-reproduction harnesses.
#pragma once

#include <iostream>
#include <string>

#include "sim/cli.hpp"
#include "sim/table.hpp"

namespace strat::bench {

/// Prints a table as CSV when --csv was passed, aligned ASCII otherwise.
inline void emit(const sim::Cli& cli, const sim::Table& table) {
  std::cout << (cli.get_bool("csv") ? table.to_csv() : table.render());
}

/// Stream for banners and commentary: stdout normally, stderr under
/// --csv so stdout stays machine-parseable (bench_all.sh redirects it).
inline std::ostream& out(const sim::Cli& cli) {
  return cli.get_bool("csv") ? std::cerr : std::cout;
}

/// Standard banner: what this binary reproduces.
inline void banner(const sim::Cli& cli, const std::string& what) {
  out(cli) << "== " << what << " ==\n";
}

}  // namespace strat::bench
