// Baseline comparison (§2): eDonkey-style bilateral exchange vs the
// TFT matching model. With independent server/client preference lists
// and arrival-queue server priorities, download decouples from upload:
// free-riders thrive and stratification vanishes. Re-coupling the
// server side to the global ranking (a credit system) restores the
// TFT-like stratified outcome — the paper's point that the *utility
// function* determines the emergent structure.
#include <iostream>

#include "analysis/independent_bmatching.hpp"
#include "bench_common.hpp"
#include "bittorrent/bandwidth.hpp"
#include "core/bilateral.hpp"
#include "graph/erdos_renyi.hpp"
#include "sim/stats.hpp"

int main(int argc, char** argv) {
  using namespace strat;
  const sim::Cli cli(argc, argv, {"n", "d", "seed", "csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 600));
  const double d = cli.get_double("d", 20.0);
  graph::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 15)));

  bench::banner(cli, "Baseline: eDonkey-style bilateral exchange vs TFT matching (n = " +
                std::to_string(n) + ", d = " + sim::fmt(d, 0) + ")");

  const bt::BandwidthModel model = bt::BandwidthModel::saroiu2002();
  const auto upload = model.representative_sample(n);
  std::vector<double> per_slot(n);
  for (std::size_t i = 0; i < n; ++i) per_slot[i] = upload[i] / 4.0;
  const core::GlobalRanking ranking = core::GlobalRanking::from_scores(per_slot);
  const graph::Graph g = graph::erdos_renyi_gnd(n, d, rng);
  const core::ExplicitAcceptance acc(g, ranking);

  // TFT model expected download (Algorithm 3).
  analysis::BMatchingOptions bm;
  bm.n = n;
  bm.p = d / static_cast<double>(n - 1);
  bm.b0 = 3;
  bm.weights = per_slot;  // index == rank: representative_sample is sorted
  const auto tft = analysis::analyze_bmatching(bm);

  // Bilateral assignments under both server policies.
  core::BilateralConfig queue_cfg;
  queue_cfg.policy = core::ServerPolicy::kRandomQueue;
  core::BilateralConfig credit_cfg;
  credit_cfg.policy = core::ServerPolicy::kGlobalRank;
  const auto queue = core::bilateral_assignment(acc, ranking, queue_cfg, rng);
  const auto credit = core::bilateral_assignment(acc, ranking, credit_cfg, rng);
  const auto queue_dl = core::bilateral_download(queue, per_slot);
  const auto credit_dl = core::bilateral_download(credit, per_slot);

  // Rank-decile comparison of D/U ratios.
  sim::Table table({"bandwidth decile", "TFT model D/U", "eDonkey queue D/U",
                    "eDonkey credit D/U"});
  const std::size_t decile = n / 10;
  for (std::size_t band = 0; band < 10; ++band) {
    double tft_du = 0.0;
    double queue_du = 0.0;
    double credit_du = 0.0;
    for (std::size_t i = band * decile; i < (band + 1) * decile; ++i) {
      tft_du += tft.expected_weight[i] / (3.0 * per_slot[i]);
      queue_du += queue_dl[i] / (4.0 * per_slot[i]);
      credit_du += credit_dl[i] / (4.0 * per_slot[i]);
    }
    const auto dd = static_cast<double>(decile);
    table.add_row({std::to_string(band + 1), sim::fmt(tft_du / dd, 2),
                   sim::fmt(queue_du / dd, 2), sim::fmt(credit_du / dd, 2)});
  }
  bench::emit(cli, table);

  std::vector<double> ranks(n);
  for (std::size_t i = 0; i < n; ++i) ranks[i] = static_cast<double>(i);
  strat::bench::out(cli) << "\nSpearman(rank, download): queue "
            << sim::fmt(sim::spearman(ranks, queue_dl), 3) << ", credit "
            << sim::fmt(sim::spearman(ranks, credit_dl), 3)
            << " (rank 0 = fastest; stratification needs strong negative)\n";
  strat::bench::out(cli) << "free-rider advantage (bottom-decile D/U, queue / credit): "
            << sim::fmt(
                   (queue_dl[n - decile / 2] / per_slot[n - decile / 2]) /
                       std::max(1e-9, credit_dl[n - decile / 2] / per_slot[n - decile / 2]),
                   1)
            << "x\n";
  strat::bench::out(cli) << "\n(the arrival-queue policy hands slow peers the same sources as fast\n"
               " ones — no contribution incentive; coupling the server side to the\n"
               " ranking reproduces the TFT stratification. This is why BitTorrent's\n"
               " single reciprocal preference list beats independent lists.)\n";
  return 0;
}
