#!/usr/bin/env bash
# Runs the whole static-analysis pass with one command, mirroring
# scripts/bench_all.sh:
#
#   1. strat-lint        repo-specific contract rules R1-R5 (always)
#   2. its self-tests    seeded-violation fixtures + clean-tree gate
#   3. clang-tidy        bugprone/performance/concurrency/nodiscard
#   4. cppcheck          warning/performance/portability
#
# 3 and 4 read the exported compile_commands.json and are graceful-
# skipped when the tool (or the compilation database) is absent — the
# same pattern the bench harness uses for Google Benchmark — so the
# script always works locally and is strict in the CI lint job, where
# both analyzers are installed.
#
# Usage: scripts/lint_all.sh [build-dir]
set -euo pipefail

build_dir="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${root}"
cc_json="${build_dir}/compile_commands.json"

strat_lint_args=(--root "${root}")
if [[ -f "${cc_json}" ]]; then
  strat_lint_args+=(--compile-commands "${cc_json}")
else
  echo "note: ${cc_json} not found — configure first for glob-coverage checking:" >&2
  echo "  cmake -B ${build_dir} -S .   (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default)" >&2
fi

echo "== strat-lint (contract rules R1-R5)"
python3 tools/strat_lint/strat_lint.py "${strat_lint_args[@]}"

echo "== strat-lint self-tests"
python3 tools/strat_lint/tests/test_strat_lint.py

# First-party translation units from the compilation database; the
# FetchContent dependencies under _deps are not ours to lint.
list_sources() {
  python3 - "${cc_json}" <<'PY'
import json, sys
from pathlib import Path
for entry in json.load(open(sys.argv[1])):
    src = str(Path(entry.get("directory", ""), entry["file"]).resolve())
    if "_deps" not in src:
        print(src)
PY
}

if [[ ! -f "${cc_json}" ]]; then
  echo "(no compile_commands.json — skipping clang-tidy and cppcheck)"
  exit 0
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy ($(clang-tidy --version | head -1))"
  list_sources | xargs -P "$(nproc)" -n 8 clang-tidy -p "${build_dir}" --quiet
else
  echo "(clang-tidy not installed — skipping; the CI lint job runs it)"
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck ($(cppcheck --version))"
  cppcheck \
    --project="${cc_json}" \
    --enable=warning,performance,portability \
    --inline-suppr \
    --suppress='*:*_deps/*' \
    --suppress=missingIncludeSystem \
    --inconclusive \
    --error-exitcode=1 \
    --quiet
else
  echo "(cppcheck not installed — skipping; the CI lint job runs it)"
fi

echo "lint pass complete"
