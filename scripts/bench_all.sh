#!/usr/bin/env bash
# Runs every figure/table reproduction bench and saves its CSV output.
#
# Usage: scripts/bench_all.sh [build-dir] [out-dir]
set -euo pipefail

build_dir="${1:-build}"
out_dir="${2:-bench-results}"

if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p "${out_dir}"

for bin in "${build_dir}"/bench/*; do
  [[ -f "${bin}" && -x "${bin}" ]] || continue
  name="$(basename "${bin}")"
  case "${name}" in
    micro_*) continue ;;  # Google Benchmark harnesses: run them directly
    CMakeFiles|Makefile|*.cmake) continue ;;
  esac
  echo "== ${name}"
  "${bin}" --csv > "${out_dir}/${name}.csv"
done

# Swarm data-plane timing baseline: flat edge-slot rounds at
# 10^2..10^4 peers, the retained map-based plane at the same sizes,
# churned rounds at 5000 peers (dynamic-overlay cost), the static +
# churned replication throughput, the long-churn scale gate
# (BM_SwarmLongChurn: end-state round time, data-plane MB and RSS at
# 10^5 and 10^6 cumulative arrivals over a fixed 5000-peer live
# population — flat across the two args is the peer-table compaction
# working; the 10^6 point takes ~30 s), and the intra-round
# thread-scaling sweep (BM_SwarmRoundThreads at 10^5 peers x threads
# 1/2/4/8: choke_fold_ms + transfer_compute_ms across the sweep is
# the parallel-phase speedup, serial_ms = mutual + transfer commit is
# the Amdahl remainder, and rerun_frac — the speculative-plan conflict
# rate — is thread-count invariant; bitwise-identical results per
# seed), and the checkpoint
# cost (BM_SwarmSnapshot at 10^4/10^5 peers: snapshot_mb plus save/
# load ms, with save_load_vs_round < 1.0 as the affordability bar),
# the fault-injection pair (BM_SwarmFaults arg 0/1: faults-off must
# stay within noise of BM_SwarmChurnRound — the zero-cost-when-off
# gate — and arg 1 prices the combined outage + flaky-connect + NAT +
# lane-loss regime),
# as one JSON snapshot (BENCH_swarm.json) for regression comparisons
# across PRs. The tracker tier rides along: BM_TrackerSimShards
# (shards 1/2/4/8 x 10/100/1000 churned swarms — swarm-round
# throughput plus barrier/shard/imbalance ms) and the shards=1
# overhead gate pair BM_TrackerClosedRounds vs
# BM_SerialSwarmLoopRounds (tracker layer within 10% of a plain
# serial Swarm loop on the same closed 100-swarm workload).
micro_swarm="${build_dir}/bench/micro_swarm"
if [[ -x "${micro_swarm}" ]]; then
  echo "== micro_swarm -> BENCH_swarm.json"
  "${micro_swarm}" \
    --benchmark_filter='BM_SwarmRound/.*|BM_SwarmRoundThreads/.*|BM_SwarmChurnRound/.*|BM_SwarmFaults/.*|BM_SwarmLongChurn/.*|BM_SwarmSnapshot/.*|BM_ReferenceSwarmRound/.*|BM_ScenarioReplications/.*|BM_ChurnScenarioReplications/.*|BM_TrackerSimShards/.*|BM_TrackerClosedRounds.*|BM_SerialSwarmLoopRounds.*' \
    --benchmark_min_time=0.05 \
    --benchmark_out="${out_dir}/BENCH_swarm.json" \
    --benchmark_out_format=json > /dev/null
else
  echo "(micro_swarm not built — Google Benchmark missing — skipping BENCH_swarm.json)"
fi

echo "wrote $(ls "${out_dir}" | wc -l) result files to ${out_dir}/"
