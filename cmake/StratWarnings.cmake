# Defines the strat_warnings INTERFACE target carrying the
# warnings-as-errors baseline shared by the library, tests, benches, and
# examples. Controlled by STRAT_WERROR.
add_library(strat_warnings INTERFACE)

if(MSVC)
  target_compile_options(strat_warnings INTERFACE /W4 $<$<BOOL:${STRAT_WERROR}>:/WX>)
else()
  target_compile_options(strat_warnings INTERFACE
    -Wall -Wextra -Wpedantic -Wshadow -Wconversion -Wsign-conversion
    $<$<BOOL:${STRAT_WERROR}>:-Werror>)
endif()
