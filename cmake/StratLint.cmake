# Registers the strat-lint static-analysis pass as tier-1 ctest
# entries, so the determinism / parallel-phase / snapshot contracts are
# checked on every `ctest` run in about a second — long before any
# simulation-level differential test could catch a violation:
#
#   strat_lint       lints src/, bench/, tests/, examples/, tools/
#                    against rules R1-R5 and cross-checks the file
#                    glob against compile_commands.json
#   test_strat_lint  the linter's own unit tests: seeded-violation
#                    fixtures per rule, the clean-tree regression, and
#                    the delete-a-save-line R4 demo
#
# Python 3 ships on every CI image and dev box this repo targets; when
# it is genuinely absent the lint tier is skipped with a notice (same
# graceful-skip pattern as the Google Benchmark harnesses) rather than
# failing the configure.

find_package(Python3 COMPONENTS Interpreter)

if(NOT Python3_Interpreter_FOUND)
  message(STATUS "strat-lint: Python3 interpreter not found — lint tier skipped")
  return()
endif()

add_test(NAME strat_lint
  COMMAND Python3::Interpreter
          ${CMAKE_CURRENT_SOURCE_DIR}/tools/strat_lint/strat_lint.py
          --root ${CMAKE_CURRENT_SOURCE_DIR}
          --compile-commands ${CMAKE_BINARY_DIR}/compile_commands.json)

add_test(NAME test_strat_lint
  COMMAND Python3::Interpreter
          ${CMAKE_CURRENT_SOURCE_DIR}/tools/strat_lint/tests/test_strat_lint.py)

set_tests_properties(strat_lint test_strat_lint PROPERTIES
  LABELS "lint"
  TIMEOUT 120)
