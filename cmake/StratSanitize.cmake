# Sanitizer instrumentation, selected by the STRAT_SANITIZE cache
# string and applied globally so the static library, tests, benches and
# examples all agree on the ABI:
#
#   -DSTRAT_SANITIZE=ON      AddressSanitizer + UBSan (gcc Debug CI job);
#                            -fno-sanitize-recover turns every UBSan
#                            finding into a test failure, not a log line.
#   -DSTRAT_SANITIZE=thread  ThreadSanitizer (the intra-round
#                            parallelism CI job: swarm tests with
#                            SwarmConfig::threads > 1). Mutually
#                            exclusive with ASan by construction.
if(STRAT_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "STRAT_SANITIZE requires gcc or clang")
  endif()
  string(TOLOWER "${STRAT_SANITIZE}" _strat_sanitize_lc)
  if(_strat_sanitize_lc STREQUAL "thread" OR _strat_sanitize_lc STREQUAL "tsan")
    add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
    add_link_options(-fsanitize=thread)
  elseif(_strat_sanitize_lc MATCHES "^(on|true|yes|1|address|asan)$")
    add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer
      -fno-sanitize-recover=all)
    add_link_options(-fsanitize=address,undefined)
  else()
    # A typo ("Threads", "ubsan", ...) must not silently build the wrong
    # sanitizer and let its CI job certify nothing.
    message(FATAL_ERROR "STRAT_SANITIZE=${STRAT_SANITIZE} not recognized: "
      "use OFF, ON (ASan+UBSan) or thread (TSan)")
  endif()
endif()
