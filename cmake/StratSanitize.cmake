# AddressSanitizer + UndefinedBehaviorSanitizer instrumentation, enabled
# with -DSTRAT_SANITIZE=ON (the gcc Debug sanitizer CI job). Applied
# globally so the static library, tests, benches and examples all agree
# on the ABI; -fno-sanitize-recover turns every UBSan finding into a
# test failure instead of a log line.
if(STRAT_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "STRAT_SANITIZE requires gcc or clang")
  endif()
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  add_link_options(-fsanitize=address,undefined)
endif()
