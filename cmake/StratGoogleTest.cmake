# Resolves GoogleTest: prefer the system package (works offline, e.g. in
# the hermetic CI container), fall back to FetchContent when the package
# is absent or STRAT_FORCE_FETCH_GTEST is set. Guarantees the
# GTest::gtest_main target exists afterwards.
set(STRAT_GTEST_FOUND OFF)

if(NOT STRAT_FORCE_FETCH_GTEST)
  find_package(GTest QUIET)
  if(GTest_FOUND)
    set(STRAT_GTEST_FOUND ON)
    message(STATUS "strat: using system GoogleTest")
  endif()
endif()

if(NOT STRAT_GTEST_FOUND)
  message(STATUS "strat: fetching GoogleTest via FetchContent")
  include(FetchContent)
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()
